package cluster

import (
	"fmt"

	"repro/internal/surrogate"
)

// BoundedPredictor extends the Predictor seam with the prediction's
// error bound: an upper bound on the answer's deviation from the
// engine-measured truth, zero when the answer is the measured surface
// itself. The SLO admission policy inflates predictions by this bound
// before checking them against tail-latency budgets, so surrogate
// answers are penalised by exactly their certificate.
type BoundedPredictor interface {
	Predictor
	PredictWithBound(lat, batch string, n int) (deg, bound float64, err error)
}

// TablePredictor serves the Predictor seam from a degradation Table's
// baked-in Predicted entries — the engine-measured prediction surface the
// scale-out studies use. It is the ground-truth fallback of the tiered
// predictor below.
type TablePredictor struct {
	Table *Table
}

// PredictDegradation implements Predictor.
func (p *TablePredictor) PredictDegradation(lat, batch string, n int) (float64, error) {
	e, err := p.Table.Get(lat, batch, n)
	if err != nil {
		return 0, err
	}
	return e.Predicted, nil
}

// PredictWithBound implements BoundedPredictor; table answers are the
// measured surface, so the bound is zero.
func (p *TablePredictor) PredictWithBound(lat, batch string, n int) (float64, float64, error) {
	deg, err := p.PredictDegradation(lat, batch, n)
	return deg, 0, err
}

// SurrogatePredictor adapts a fitted surrogate.Set with an embedded
// Equation 3 model to the Predictor seam, answering in microseconds
// without touching the engine. Instance-count dependence is modelled
// analytically on the surrogate curves: n stacked instances of the batch
// application exert its contentiousness curves evaluated at intensity
// n/Capacity (more siblings, more pressure, saturating at full
// occupancy), and — mirroring model.Smite.PredictPartial — the intercept,
// which must vanish at n = 0, is scaled by the occupied fraction. The
// victim's sensitivities are its full-intensity values, as in the
// pairwise surrogate path.
type SurrogatePredictor struct {
	Set *surrogate.Set
	// Capacity is the number of idle sibling contexts instances stack on
	// (the study's ContextsPerServer − ThreadsPerServer).
	Capacity int
}

// predict returns the surrogate answer with its propagated error bound
// (the same soundness argument as surrogate.Set.PredictWith, with the
// aggressor curves evaluated at the occupancy-scaled intensity).
func (p *SurrogatePredictor) predict(lat, batch string, n int) (surrogate.Prediction, error) {
	if p.Set == nil || p.Set.Eq3 == nil {
		return surrogate.Prediction{}, fmt.Errorf("cluster: surrogate predictor needs a set with an embedded Eq3 model")
	}
	if p.Capacity <= 0 {
		return surrogate.Prediction{}, fmt.Errorf("cluster: surrogate predictor capacity must be positive, got %d", p.Capacity)
	}
	mv, err := p.Set.Model(lat)
	if err != nil {
		return surrogate.Prediction{}, err
	}
	ma, err := p.Set.Model(batch)
	if err != nil {
		return surrogate.Prediction{}, err
	}
	x := float64(n) / float64(p.Capacity)
	if x > 1 {
		x = 1
	}
	eq3 := *p.Set.Eq3
	pred := surrogate.Prediction{Degradation: eq3.Intercept * x}
	for d := range eq3.Coef {
		sen, con := mv.Sen[d].At(1), ma.Con[d].At(x)
		es, ec := mv.Sen[d].MaxAbsErr, ma.Con[d].MaxAbsErr
		pred.Degradation += eq3.Coef[d] * sen * con
		pred.Bound += abs(eq3.Coef[d]) * (abs(sen)*ec + es*abs(con) + es*ec)
	}
	return pred, nil
}

// PredictDegradation implements Predictor.
func (p *SurrogatePredictor) PredictDegradation(lat, batch string, n int) (float64, error) {
	pred, err := p.predict(lat, batch, n)
	return pred.Degradation, err
}

// PredictWithBound implements BoundedPredictor with the propagated
// surrogate certificate.
func (p *SurrogatePredictor) PredictWithBound(lat, batch string, n int) (float64, float64, error) {
	pred, err := p.predict(lat, batch, n)
	return pred.Degradation, pred.Bound, err
}

// TieredPredictor is the qosd serving policy at the Predictor seam:
// answer from the surrogate tier when its certificate clears the accuracy
// budget, fall back to the (engine-measured) predictor otherwise. The
// cluster simulator consults the seam only once per distinct
// (lat, batch, n) cell — BuildPredTable memoizes the surface — so even
// the fallback path costs a handful of calls per run.
type TieredPredictor struct {
	Surrogate *SurrogatePredictor
	// Threshold is the largest surrogate error bound served before
	// falling back; zero means DefaultTierThreshold.
	Threshold float64
	// Fallback answers when the surrogate bound is too loose or the
	// surrogate has no model for an application.
	Fallback Predictor
}

// DefaultTierThreshold matches qosd.DefaultSurrogateThreshold: bounds
// above five degradation points fall back to measured predictions.
const DefaultTierThreshold = 0.05

// PredictDegradation implements Predictor.
func (t *TieredPredictor) PredictDegradation(lat, batch string, n int) (float64, error) {
	deg, _, err := t.PredictWithBound(lat, batch, n)
	return deg, err
}

// PredictWithBound implements BoundedPredictor: surrogate answers carry
// their certificate, fallback answers the fallback's own bound (zero for
// the measured table).
func (t *TieredPredictor) PredictWithBound(lat, batch string, n int) (float64, float64, error) {
	thr := t.Threshold
	if thr <= 0 {
		thr = DefaultTierThreshold
	}
	if t.Surrogate != nil {
		if pred, err := t.Surrogate.predict(lat, batch, n); err == nil && pred.Bound <= thr {
			return pred.Degradation, pred.Bound, nil
		}
	}
	if t.Fallback == nil {
		return 0, 0, fmt.Errorf("cluster: tiered predictor has no fallback for %s|%s|%d", lat, batch, n)
	}
	if b, ok := t.Fallback.(BoundedPredictor); ok {
		return b.PredictWithBound(lat, batch, n)
	}
	deg, err := t.Fallback.PredictDegradation(lat, batch, n)
	return deg, 0, err
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
