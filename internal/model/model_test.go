package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/profile"
	"repro/internal/rulers"
	"repro/internal/sim/pmu"
	"repro/internal/xrand"
)

// synthObs generates observations from a known Equation 3 ground truth.
func synthObs(rng *xrand.Rand, n int, coef [rulers.NumDimensions]float64, c0, noise float64) []PairObs {
	obs := make([]PairObs, n)
	for i := range obs {
		var o PairObs
		for d := 0; d < int(rulers.NumDimensions); d++ {
			o.SenA[d] = rng.Float64()
			o.ConB[d] = rng.Float64()
			o.Deg += coef[d] * o.SenA[d] * o.ConB[d]
		}
		o.Deg += c0 + noise*(rng.Float64()-0.5)
		for f := 0; f < pmu.NumPMUFeatures; f++ {
			o.PMUA[f] = rng.Float64()
			o.PMUB[f] = rng.Float64()
		}
		obs[i] = o
	}
	return obs
}

func TestTrainSmiteRecoversGroundTruth(t *testing.T) {
	rng := xrand.New(11)
	coef := [rulers.NumDimensions]float64{0.5, 1.2, 0.3, 0.8, 0.1, 0.9, 1.5}
	obs := synthObs(rng, 200, coef, 0.02, 0)
	m, err := TrainSmite(obs)
	if err != nil {
		t.Fatal(err)
	}
	for d := range coef {
		if math.Abs(m.Coef[d]-coef[d]) > 1e-6 {
			t.Errorf("coef[%d] = %g, want %g", d, m.Coef[d], coef[d])
		}
	}
	if math.Abs(m.Intercept-0.02) > 1e-6 {
		t.Errorf("c0 = %g", m.Intercept)
	}
	if ev := Evaluate(m, obs); ev.MeanAbsError > 1e-9 {
		t.Errorf("in-sample error %g on noise-free data", ev.MeanAbsError)
	}
}

func TestTrainSmiteNNLSRecoversNonNegativeTruth(t *testing.T) {
	rng := xrand.New(13)
	coef := [rulers.NumDimensions]float64{0.5, 1.2, 0.3, 0.8, 0.1, 0.9, 1.5}
	obs := synthObs(rng, 300, coef, -0.01, 0)
	m, err := TrainSmiteNNLS(obs)
	if err != nil {
		t.Fatal(err)
	}
	for d := range coef {
		if math.Abs(m.Coef[d]-coef[d]) > 1e-4 {
			t.Errorf("coef[%d] = %g, want %g", d, m.Coef[d], coef[d])
		}
	}
	if math.Abs(m.Intercept+0.01) > 1e-4 {
		t.Errorf("c0 = %g, want -0.01 (intercept stays unconstrained)", m.Intercept)
	}
}

// Property: NNLS never produces negative dimension weights.
func TestNNLSNonNegativity(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		var coef [rulers.NumDimensions]float64
		for d := range coef {
			coef[d] = rng.Float64()*4 - 2 // mixed-sign ground truth
		}
		obs := synthObs(rng, 60, coef, 0, 0.1)
		m, err := TrainSmiteNNLS(obs)
		if err != nil {
			return false
		}
		for _, c := range m.Coef {
			if c < 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTrainSmiteTooFewObs(t *testing.T) {
	if _, err := TrainSmite(make([]PairObs, 3)); err == nil {
		t.Error("under-determined fit accepted")
	}
	if _, err := TrainSmiteNNLS(make([]PairObs, 3)); err == nil {
		t.Error("under-determined NNLS accepted")
	}
}

func TestPMULinearRecoversLinearTarget(t *testing.T) {
	rng := xrand.New(17)
	obs := synthObs(rng, 300, [rulers.NumDimensions]float64{}, 0, 0)
	// Target depends linearly on two PMU rates.
	for i := range obs {
		obs[i].Deg = 0.3*obs[i].PMUA[0] + 0.5*obs[i].PMUB[4] + 0.1
	}
	m, err := TrainPMULinear(obs)
	if err != nil {
		t.Fatal(err)
	}
	if ev := Evaluate(m, obs); ev.MeanAbsError > 1e-6 {
		t.Errorf("PMU linear failed to fit a linear target: %g", ev.MeanAbsError)
	}
	if math.Abs(m.CoefA[0]-0.3) > 1e-4 || math.Abs(m.CoefB[4]-0.5) > 1e-4 {
		t.Errorf("coefficients %g/%g", m.CoefA[0], m.CoefB[4])
	}
}

func TestPMUPolyFitsQuadratic(t *testing.T) {
	rng := xrand.New(19)
	obs := synthObs(rng, 400, [rulers.NumDimensions]float64{}, 0, 0)
	for i := range obs {
		x := obs[i].PMUA[2]
		obs[i].Deg = 0.8*x*x + 0.1
	}
	poly, err := TrainPMUPoly(obs)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := TrainPMULinear(obs)
	if err != nil {
		t.Fatal(err)
	}
	evPoly := Evaluate(poly, obs)
	evLin := Evaluate(lin, obs)
	if evPoly.MeanAbsError >= evLin.MeanAbsError {
		t.Errorf("poly (%g) should beat linear (%g) on a quadratic target", evPoly.MeanAbsError, evLin.MeanAbsError)
	}
}

func TestCARTFitsStepFunction(t *testing.T) {
	rng := xrand.New(23)
	obs := synthObs(rng, 400, [rulers.NumDimensions]float64{}, 0, 0)
	for i := range obs {
		if obs[i].PMUB[9] > 0.5 { // MEM-hits/cycle threshold
			obs[i].Deg = 0.4
		} else {
			obs[i].Deg = 0.05
		}
	}
	tree, err := TrainCART(obs, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ev := Evaluate(tree, obs); ev.MeanAbsError > 0.02 {
		t.Errorf("CART error %g on a step target", ev.MeanAbsError)
	}
	if tree.Depth() < 1 {
		t.Error("tree did not split")
	}
	lin, _ := TrainPMULinear(obs)
	if Evaluate(tree, obs).MeanAbsError >= Evaluate(lin, obs).MeanAbsError {
		t.Error("CART should beat linear on a step target")
	}
}

func TestCARTErrors(t *testing.T) {
	if _, err := TrainCART(nil, 0, 0); err == nil {
		t.Error("empty training set accepted")
	}
}

func TestEvaluatePerApp(t *testing.T) {
	m := Smite{Intercept: 0.1}
	obs := []PairObs{
		{A: "x", B: "y", Deg: 0.1},
		{A: "x", B: "z", Deg: 0.3},
		{A: "y", B: "x", Deg: 0.1},
	}
	ev := Evaluate(m, obs)
	if math.Abs(ev.PerApp["x"]-0.1) > 1e-12 {
		t.Errorf("PerApp[x] = %g, want 0.1", ev.PerApp["x"])
	}
	if math.Abs(ev.PerApp["y"]) > 1e-12 {
		t.Errorf("PerApp[y] = %g, want 0", ev.PerApp["y"])
	}
	if apps := ev.Apps(); len(apps) != 2 || apps[0] != "x" {
		t.Errorf("Apps() = %v", apps)
	}
}

func TestBuildObservations(t *testing.T) {
	chars := []profile.Characterization{
		{App: "a", Sen: [8]float64{1: 0.5}, Con: [8]float64{1: 0.2}},
		{App: "b", Sen: [8]float64{6: 0.4}, Con: [8]float64{6: 0.7}},
	}
	pairs := []profile.PairMeasurement{{A: "a", B: "b", DegA: 0.3, DegB: 0.1}}
	obs, err := BuildObservations(chars, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 2 {
		t.Fatalf("got %d observations, want 2 (one per victim)", len(obs))
	}
	if obs[0].A != "a" || obs[0].Deg != 0.3 || obs[0].SenA[1] != 0.5 || obs[0].ConB[6] != 0.7 {
		t.Errorf("victim-a observation = %+v", obs[0])
	}
	if obs[1].A != "b" || obs[1].Deg != 0.1 || obs[1].SenA[6] != 0.4 || obs[1].ConB[1] != 0.2 {
		t.Errorf("victim-b observation = %+v", obs[1])
	}
	if _, err := BuildObservations(chars, []profile.PairMeasurement{{A: "a", B: "missing"}}); err == nil {
		t.Error("missing characterization accepted")
	}
}

func TestPredictorNames(t *testing.T) {
	if (Smite{}).Name() != "SMiTe" || (PMULinear{}).Name() != "PMU-linear" {
		t.Error("predictor names wrong")
	}
	if (PMUPoly{}).Name() != "PMU-poly2" || (&CART{}).Name() != "PMU-decision-tree" {
		t.Error("predictor names wrong")
	}
	if (&CART{}).Predict(PairObs{}) != 0 {
		t.Error("empty tree should predict 0")
	}
}
