// Colocation advisor: the workload the paper's introduction motivates — a
// cluster operator must fill the idle SMT contexts next to a
// latency-sensitive service without violating its QoS. The advisor
// characterizes the service and every batch candidate once, trains the
// SMiTe model, and ranks the candidates by predicted interference.
//
// Run with:
//
//	go run ./examples/colocation-advisor
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/smite"
)

func main() {
	const qosTarget = 0.90 // the service must keep 90% of its performance

	// The latency-sensitive service runs on the 6-core Sandy Bridge-EN
	// fleet, half-loaded: one thread per core, siblings idle.
	cfg := smite.SandyBridgeEN.Config()
	cfg.Cores = 4 // trimmed for example runtime
	sys, err := smite.New(cfg, smite.WithOptions(smite.FastOptions()))
	if err != nil {
		log.Fatal(err)
	}

	websearch, err := smite.WorkloadByName("web-search")
	if err != nil {
		log.Fatal(err)
	}

	// Batch candidates: a slice of the SPEC suite.
	candidateNames := []string{
		"456.hmmer", "470.lbm", "429.mcf", "444.namd",
		"403.gcc", "462.libquantum", "454.calculix", "473.astar",
	}
	var candidates []*smite.Spec
	for _, n := range candidateNames {
		s, err := smite.WorkloadByName(n)
		if err != nil {
			log.Fatal(err)
		}
		candidates = append(candidates, s)
	}

	// Train once on a disjoint set (the paper's odd-numbered protocol,
	// truncated for speed).
	_, train := smite.TrainTestSplit()
	m, _, err := sys.TrainFromSets(train[:8], smite.SMT)
	if err != nil {
		log.Fatal(err)
	}

	// One characterization per application — this is the whole profiling
	// cost of admitting a new batch workload to the cluster.
	fmt.Println("characterizing the service and candidates...")
	chService, err := sys.Characterize(websearch, smite.SMT)
	if err != nil {
		log.Fatal(err)
	}
	type ranked struct {
		name string
		deg  float64
	}
	var ranking []ranked
	for _, c := range candidates {
		ch, err := sys.Characterize(c, smite.SMT)
		if err != nil {
			log.Fatal(err)
		}
		ranking = append(ranking, ranked{c.Name, m.PredictPair(chService, ch)})
	}
	sort.Slice(ranking, func(i, j int) bool { return ranking[i].deg < ranking[j].deg })

	fmt.Printf("\npredicted interference on %s (QoS target %.0f%%):\n", websearch.Name, qosTarget*100)
	fmt.Printf("%-18s %-22s %s\n", "batch candidate", "predicted degradation", "verdict")
	for _, r := range ranking {
		verdict := "UNSAFE — keep on dedicated batch servers"
		if 1-r.deg >= qosTarget {
			verdict = "safe to co-locate"
		}
		fmt.Printf("%-18s %20.2f%%  %s\n", r.name, r.deg*100, verdict)
	}
}
