package workload

import "fmt"

// The tables below model the 29 SPEC CPU2006 benchmarks (ref inputs) and
// the four CloudSuite applications used in the paper. Parameters are set
// from the benchmarks' published characterisations at the granularity that
// matters to SMiTe: port mix (which functional units a code leans on),
// working-set structure relative to L1/L2/L3 (hot region + main footprint),
// access pattern (pointer chasing vs streaming), branch predictability and
// exposed instruction/memory-level parallelism. Footnotes call out the
// behaviours the paper names explicitly (e.g. 429.mcf barely sensitive to
// port 1, 444.namd highly sensitive; 454.calculix contentious on port 0,
// 470.lbm on port 1; CloudSuite very contentious at L3).

const (
	kib = 1 << 10
	mib = 1 << 20
)

var specCPU2006 = []Spec{
	// ------------------------- SPEC_INT -------------------------
	{
		Name: "400.perlbench", Number: 400, Suite: SpecINT,
		Mix:         Mix{IntAdd: 0.42, IntMul: 0.02, Load: 0.24, Store: 0.11, Branch: 0.20, Nop: 0.01},
		MeanDepDist: 5.0, Dep2Prob: 0.25, IndepFrac: 0.35, PointerChaseFrac: 0.20,
		FootprintBytes: 2 * mib, Pattern: PatternMixed, StrideBytes: 8, RandomFrac: 0.5,
		HotBytes: 24 * kib, HotFrac: 0.65,
		WarmBytes: 256 * kib, WarmFrac: 0.20,
		BranchTags: 1024, BranchBias: 0.94,
		ICacheMissRate: 0.010, ITLBMissRate: 0.004,
	},
	{
		Name: "401.bzip2", Number: 401, Suite: SpecINT,
		Mix:         Mix{IntAdd: 0.40, IntMul: 0.03, Load: 0.26, Store: 0.11, Branch: 0.19, Nop: 0.01},
		MeanDepDist: 5.5, Dep2Prob: 0.25, IndepFrac: 0.35, PointerChaseFrac: 0.10,
		FootprintBytes: 4 * mib, Pattern: PatternMixed, StrideBytes: 8, RandomFrac: 0.4,
		HotBytes: 24 * kib, HotFrac: 0.55,
		WarmBytes: 1 * mib, WarmFrac: 0.25,
		BranchTags: 512, BranchBias: 0.90,
		ICacheMissRate: 0.002, ITLBMissRate: 0.001,
	},
	{
		Name: "403.gcc", Number: 403, Suite: SpecINT,
		Mix:         Mix{IntAdd: 0.38, IntMul: 0.02, Load: 0.26, Store: 0.13, Branch: 0.20, Nop: 0.01},
		MeanDepDist: 5.0, Dep2Prob: 0.25, IndepFrac: 0.30, PointerChaseFrac: 0.20,
		FootprintBytes: 8 * mib, Pattern: PatternMixed, StrideBytes: 8, RandomFrac: 0.5,
		HotBytes: 32 * kib, HotFrac: 0.50,
		WarmBytes: 1536 * kib, WarmFrac: 0.30,
		BranchTags: 2048, BranchBias: 0.93,
		ICacheMissRate: 0.012, ITLBMissRate: 0.005,
	},
	{
		// Pointer chasing over a huge working set: little ILP and
		// strongly memory-bound — the paper measures only ~6% port-1
		// sensitivity for mcf.
		Name: "429.mcf", Number: 429, Suite: SpecINT,
		Mix:         Mix{IntAdd: 0.30, Load: 0.35, Store: 0.09, Branch: 0.24, Nop: 0.02},
		MeanDepDist: 3.0, Dep2Prob: 0.15, IndepFrac: 0.15, PointerChaseFrac: 0.75,
		FootprintBytes: 48 * mib, Pattern: PatternRandom,
		HotBytes: 24 * kib, HotFrac: 0.35,
		WarmBytes: 4 * mib, WarmFrac: 0.35,
		BranchTags: 256, BranchBias: 0.92,
		ICacheMissRate: 0.001, ITLBMissRate: 0.002,
	},
	{
		Name: "445.gobmk", Number: 445, Suite: SpecINT,
		Mix:         Mix{IntAdd: 0.40, IntMul: 0.02, Load: 0.25, Store: 0.10, Branch: 0.22, Nop: 0.01},
		MeanDepDist: 5.0, Dep2Prob: 0.25, IndepFrac: 0.35, PointerChaseFrac: 0.15,
		FootprintBytes: 192 * kib, Pattern: PatternMixed, StrideBytes: 8, RandomFrac: 0.5,
		HotBytes: 16 * kib, HotFrac: 0.50,
		WarmBytes: 128 * kib, WarmFrac: 0.25,
		BranchTags: 4096, BranchBias: 0.82, // hard-to-predict game-tree branches
		ICacheMissRate: 0.006, ITLBMissRate: 0.002,
	},
	{
		Name: "456.hmmer", Number: 456, Suite: SpecINT,
		Mix:         Mix{IntAdd: 0.52, IntMul: 0.05, Load: 0.29, Store: 0.08, Branch: 0.05, Nop: 0.01},
		MeanDepDist: 10.0, Dep2Prob: 0.30, IndepFrac: 0.55, PointerChaseFrac: 0.05,
		FootprintBytes: 24 * kib, Pattern: PatternRandom,
		BranchTags: 128, BranchBias: 0.97,
		ICacheMissRate: 0.0005, ITLBMissRate: 0.0002,
	},
	{
		Name: "458.sjeng", Number: 458, Suite: SpecINT,
		Mix:         Mix{IntAdd: 0.42, IntMul: 0.02, Load: 0.23, Store: 0.09, Branch: 0.23, Nop: 0.01},
		MeanDepDist: 5.0, Dep2Prob: 0.20, IndepFrac: 0.35, PointerChaseFrac: 0.15,
		FootprintBytes: 256 * kib, Pattern: PatternRandom,
		HotBytes: 16 * kib, HotFrac: 0.45,
		WarmBytes: 192 * kib, WarmFrac: 0.25,
		BranchTags: 2048, BranchBias: 0.85,
		ICacheMissRate: 0.004, ITLBMissRate: 0.001,
	},
	{
		Name: "462.libquantum", Number: 462, Suite: SpecINT,
		Mix:         Mix{IntAdd: 0.40, Load: 0.30, Store: 0.12, Branch: 0.17, Nop: 0.01},
		MeanDepDist: 10.0, Dep2Prob: 0.20, IndepFrac: 0.50, PointerChaseFrac: 0.02,
		FootprintBytes: 64 * mib, Pattern: PatternStride, StrideBytes: 8, // streaming
		HotBytes: 8 * kib, HotFrac: 0.20,
		BranchTags: 64, BranchBias: 0.99,
		ICacheMissRate: 0.0002, ITLBMissRate: 0.0001,
	},
	{
		Name: "464.h264ref", Number: 464, Suite: SpecINT,
		Mix:         Mix{IntAdd: 0.45, IntMul: 0.06, Load: 0.30, Store: 0.10, Branch: 0.08, Nop: 0.01},
		MeanDepDist: 9.0, Dep2Prob: 0.30, IndepFrac: 0.50, PointerChaseFrac: 0.08,
		FootprintBytes: 512 * kib, Pattern: PatternMixed, StrideBytes: 16, RandomFrac: 0.3,
		HotBytes: 24 * kib, HotFrac: 0.50,
		WarmBytes: 256 * kib, WarmFrac: 0.30,
		BranchTags: 512, BranchBias: 0.95,
		ICacheMissRate: 0.003, ITLBMissRate: 0.001,
	},
	{
		Name: "471.omnetpp", Number: 471, Suite: SpecINT,
		Mix:         Mix{IntAdd: 0.33, IntMul: 0.01, Load: 0.31, Store: 0.13, Branch: 0.21, Nop: 0.01},
		MeanDepDist: 3.5, Dep2Prob: 0.15, IndepFrac: 0.20, PointerChaseFrac: 0.55,
		FootprintBytes: 64 * mib, Pattern: PatternRandom,
		HotBytes: 24 * kib, HotFrac: 0.40,
		WarmBytes: 4 * mib, WarmFrac: 0.30,
		BranchTags: 1024, BranchBias: 0.88,
		ICacheMissRate: 0.008, ITLBMissRate: 0.006,
	},
	{
		Name: "473.astar", Number: 473, Suite: SpecINT,
		Mix:         Mix{IntAdd: 0.36, Load: 0.31, Store: 0.09, Branch: 0.23, Nop: 0.01},
		MeanDepDist: 3.0, Dep2Prob: 0.15, IndepFrac: 0.20, PointerChaseFrac: 0.60,
		FootprintBytes: 16 * mib, Pattern: PatternRandom,
		HotBytes: 16 * kib, HotFrac: 0.40,
		WarmBytes: 3 * mib, WarmFrac: 0.35,
		BranchTags: 512, BranchBias: 0.86,
		ICacheMissRate: 0.001, ITLBMissRate: 0.001,
	},
	{
		Name: "483.xalancbmk", Number: 483, Suite: SpecINT,
		Mix:         Mix{IntAdd: 0.34, IntMul: 0.01, Load: 0.30, Store: 0.11, Branch: 0.23, Nop: 0.01},
		MeanDepDist: 4.0, Dep2Prob: 0.20, IndepFrac: 0.25, PointerChaseFrac: 0.45,
		FootprintBytes: 32 * mib, Pattern: PatternMixed, StrideBytes: 8, RandomFrac: 0.6,
		HotBytes: 24 * kib, HotFrac: 0.45,
		WarmBytes: 6 * mib, WarmFrac: 0.30,
		BranchTags: 2048, BranchBias: 0.90,
		ICacheMissRate: 0.014, ITLBMissRate: 0.008,
	},

	// ------------------------- SPEC_FP --------------------------
	{
		Name: "410.bwaves", Number: 410, Suite: SpecFP,
		Mix:         Mix{FPMul: 0.22, FPAdd: 0.24, FPShuf: 0.03, IntAdd: 0.08, Load: 0.28, Store: 0.09, Branch: 0.05, Nop: 0.01},
		MeanDepDist: 11.0, Dep2Prob: 0.35, IndepFrac: 0.50, PointerChaseFrac: 0.02,
		FootprintBytes: 96 * mib, Pattern: PatternStride, StrideBytes: 8,
		HotBytes: 8 * kib, HotFrac: 0.25,
		BranchTags: 64, BranchBias: 0.99,
		ICacheMissRate: 0.0002, ITLBMissRate: 0.0001,
	},
	{
		Name: "416.gamess", Number: 416, Suite: SpecFP,
		Mix:         Mix{FPMul: 0.26, FPAdd: 0.24, FPShuf: 0.05, IntAdd: 0.10, Load: 0.24, Store: 0.05, Branch: 0.05, Nop: 0.01},
		MeanDepDist: 11.0, Dep2Prob: 0.35, IndepFrac: 0.55, PointerChaseFrac: 0.05,
		FootprintBytes: 20 * kib, Pattern: PatternRandom,
		BranchTags: 256, BranchBias: 0.97,
		ICacheMissRate: 0.005, ITLBMissRate: 0.001,
	},
	{
		Name: "433.milc", Number: 433, Suite: SpecFP,
		Mix:         Mix{FPMul: 0.20, FPAdd: 0.20, FPShuf: 0.04, IntAdd: 0.08, Load: 0.30, Store: 0.12, Branch: 0.05, Nop: 0.01},
		MeanDepDist: 10.0, Dep2Prob: 0.30, IndepFrac: 0.50, PointerChaseFrac: 0.02,
		FootprintBytes: 128 * mib, Pattern: PatternStride, StrideBytes: 8,
		HotBytes: 8 * kib, HotFrac: 0.20,
		BranchTags: 128, BranchBias: 0.98,
		ICacheMissRate: 0.0005, ITLBMissRate: 0.0002,
	},
	{
		Name: "434.zeusmp", Number: 434, Suite: SpecFP,
		Mix:         Mix{FPMul: 0.19, FPAdd: 0.21, FPShuf: 0.03, IntAdd: 0.10, Load: 0.28, Store: 0.11, Branch: 0.07, Nop: 0.01},
		MeanDepDist: 9.0, Dep2Prob: 0.30, IndepFrac: 0.45, PointerChaseFrac: 0.05,
		FootprintBytes: 24 * mib, Pattern: PatternMixed, StrideBytes: 8, RandomFrac: 0.3,
		HotBytes: 16 * kib, HotFrac: 0.35,
		WarmBytes: 3 * mib, WarmFrac: 0.25,
		BranchTags: 256, BranchBias: 0.97,
		ICacheMissRate: 0.001, ITLBMissRate: 0.0005,
	},
	{
		Name: "435.gromacs", Number: 435, Suite: SpecFP,
		Mix:         Mix{FPMul: 0.27, FPAdd: 0.25, FPShuf: 0.06, IntAdd: 0.09, Load: 0.23, Store: 0.05, Branch: 0.04, Nop: 0.01},
		MeanDepDist: 11.0, Dep2Prob: 0.35, IndepFrac: 0.55, PointerChaseFrac: 0.05,
		FootprintBytes: 28 * kib, Pattern: PatternRandom,
		BranchTags: 128, BranchBias: 0.96,
		ICacheMissRate: 0.001, ITLBMissRate: 0.0003,
	},
	{
		Name: "436.cactusADM", Number: 436, Suite: SpecFP,
		Mix:         Mix{FPMul: 0.24, FPAdd: 0.22, FPShuf: 0.02, IntAdd: 0.08, Load: 0.29, Store: 0.10, Branch: 0.04, Nop: 0.01},
		MeanDepDist: 10.0, Dep2Prob: 0.35, IndepFrac: 0.50, PointerChaseFrac: 0.03,
		FootprintBytes: 48 * mib, Pattern: PatternStride, StrideBytes: 8,
		HotBytes: 8 * kib, HotFrac: 0.25,
		BranchTags: 64, BranchBias: 0.99,
		ICacheMissRate: 0.0005, ITLBMissRate: 0.0002,
	},
	{
		Name: "437.leslie3d", Number: 437, Suite: SpecFP,
		Mix:         Mix{FPMul: 0.21, FPAdd: 0.23, FPShuf: 0.03, IntAdd: 0.08, Load: 0.29, Store: 0.11, Branch: 0.04, Nop: 0.01},
		MeanDepDist: 10.0, Dep2Prob: 0.30, IndepFrac: 0.50, PointerChaseFrac: 0.02,
		FootprintBytes: 64 * mib, Pattern: PatternStride, StrideBytes: 8,
		HotBytes: 8 * kib, HotFrac: 0.20,
		BranchTags: 64, BranchBias: 0.99,
		ICacheMissRate: 0.0003, ITLBMissRate: 0.0001,
	},
	{
		// Dense FP kernels with very high ILP and a tiny working set:
		// the paper measures up to 71% degradation under port-1 (FP_ADD)
		// pressure for namd.
		Name: "444.namd", Number: 444, Suite: SpecFP,
		Mix:         Mix{FPMul: 0.30, FPAdd: 0.32, FPShuf: 0.06, IntAdd: 0.08, Load: 0.19, Store: 0.02, Branch: 0.02, Nop: 0.01},
		MeanDepDist: 14.0, Dep2Prob: 0.40, IndepFrac: 0.60, PointerChaseFrac: 0.03,
		FootprintBytes: 16 * kib, Pattern: PatternRandom,
		BranchTags: 64, BranchBias: 0.98,
		ICacheMissRate: 0.0002, ITLBMissRate: 0.0001,
	},
	{
		Name: "447.dealII", Number: 447, Suite: SpecFP,
		Mix:         Mix{FPMul: 0.22, FPAdd: 0.22, FPShuf: 0.04, IntAdd: 0.11, Load: 0.26, Store: 0.08, Branch: 0.06, Nop: 0.01},
		MeanDepDist: 8.0, Dep2Prob: 0.30, IndepFrac: 0.45, PointerChaseFrac: 0.15,
		FootprintBytes: 192 * kib, Pattern: PatternRandom,
		HotBytes: 16 * kib, HotFrac: 0.40,
		WarmBytes: 128 * kib, WarmFrac: 0.30,
		BranchTags: 512, BranchBias: 0.95,
		ICacheMissRate: 0.003, ITLBMissRate: 0.001,
	},
	{
		Name: "450.soplex", Number: 450, Suite: SpecFP,
		Mix:         Mix{FPMul: 0.16, FPAdd: 0.16, FPShuf: 0.02, IntAdd: 0.12, Load: 0.32, Store: 0.10, Branch: 0.11, Nop: 0.01},
		MeanDepDist: 5.0, Dep2Prob: 0.20, IndepFrac: 0.30, PointerChaseFrac: 0.30,
		FootprintBytes: 48 * mib, Pattern: PatternRandom,
		HotBytes: 24 * kib, HotFrac: 0.35,
		WarmBytes: 4 * mib, WarmFrac: 0.25,
		BranchTags: 512, BranchBias: 0.93,
		ICacheMissRate: 0.002, ITLBMissRate: 0.001,
	},
	{
		Name: "453.povray", Number: 453, Suite: SpecFP,
		Mix:         Mix{FPMul: 0.24, FPAdd: 0.22, FPShuf: 0.05, IntAdd: 0.12, Load: 0.22, Store: 0.07, Branch: 0.07, Nop: 0.01},
		MeanDepDist: 8.0, Dep2Prob: 0.30, IndepFrac: 0.50, PointerChaseFrac: 0.10,
		FootprintBytes: 20 * kib, Pattern: PatternRandom,
		BranchTags: 1024, BranchBias: 0.94,
		ICacheMissRate: 0.004, ITLBMissRate: 0.001,
	},
	{
		// FP_MUL-leaning mix over an L1-resident working set: the paper
		// notes calculix is more contentious on port 0 and relies
		// heavily on the L1 (similar L1/L2 sensitivity).
		Name: "454.calculix", Number: 454, Suite: SpecFP,
		Mix:         Mix{FPMul: 0.31, FPAdd: 0.24, FPShuf: 0.04, IntAdd: 0.09, Load: 0.23, Store: 0.05, Branch: 0.03, Nop: 0.01},
		MeanDepDist: 12.0, Dep2Prob: 0.35, IndepFrac: 0.60, PointerChaseFrac: 0.05,
		FootprintBytes: 20 * kib, Pattern: PatternRandom,
		BranchTags: 128, BranchBias: 0.97,
		ICacheMissRate: 0.0005, ITLBMissRate: 0.0002,
	},
	{
		Name: "459.GemsFDTD", Number: 459, Suite: SpecFP,
		Mix:         Mix{FPMul: 0.20, FPAdd: 0.22, FPShuf: 0.02, IntAdd: 0.08, Load: 0.30, Store: 0.12, Branch: 0.05, Nop: 0.01},
		MeanDepDist: 10.0, Dep2Prob: 0.30, IndepFrac: 0.50, PointerChaseFrac: 0.03,
		FootprintBytes: 96 * mib, Pattern: PatternStride, StrideBytes: 8,
		HotBytes: 8 * kib, HotFrac: 0.20,
		BranchTags: 64, BranchBias: 0.99,
		ICacheMissRate: 0.0003, ITLBMissRate: 0.0001,
	},
	{
		Name: "465.tonto", Number: 465, Suite: SpecFP,
		Mix:         Mix{FPMul: 0.23, FPAdd: 0.22, FPShuf: 0.05, IntAdd: 0.11, Load: 0.25, Store: 0.07, Branch: 0.06, Nop: 0.01},
		MeanDepDist: 9.0, Dep2Prob: 0.30, IndepFrac: 0.50, PointerChaseFrac: 0.10,
		FootprintBytes: 256 * kib, Pattern: PatternRandom,
		HotBytes: 16 * kib, HotFrac: 0.35,
		WarmBytes: 192 * kib, WarmFrac: 0.30,
		BranchTags: 512, BranchBias: 0.95,
		ICacheMissRate: 0.004, ITLBMissRate: 0.001,
	},
	{
		// Streaming lattice-Boltzmann kernel: FP_ADD-leaning (the paper
		// notes lbm is more contentious on port 1) with a huge
		// bandwidth-bound footprint.
		Name: "470.lbm", Number: 470, Suite: SpecFP,
		Mix:         Mix{FPMul: 0.21, FPAdd: 0.29, FPShuf: 0.02, IntAdd: 0.06, Load: 0.26, Store: 0.13, Branch: 0.02, Nop: 0.01},
		MeanDepDist: 12.0, Dep2Prob: 0.30, IndepFrac: 0.55, PointerChaseFrac: 0.01,
		FootprintBytes: 192 * mib, Pattern: PatternStride, StrideBytes: 8,
		HotBytes: 8 * kib, HotFrac: 0.15,
		BranchTags: 32, BranchBias: 0.995,
		ICacheMissRate: 0.0001, ITLBMissRate: 0.0001,
	},
	{
		Name: "481.wrf", Number: 481, Suite: SpecFP,
		Mix:         Mix{FPMul: 0.22, FPAdd: 0.23, FPShuf: 0.03, IntAdd: 0.09, Load: 0.27, Store: 0.09, Branch: 0.06, Nop: 0.01},
		MeanDepDist: 9.0, Dep2Prob: 0.30, IndepFrac: 0.45, PointerChaseFrac: 0.08,
		FootprintBytes: 12 * mib, Pattern: PatternMixed, StrideBytes: 8, RandomFrac: 0.3,
		HotBytes: 16 * kib, HotFrac: 0.35,
		WarmBytes: 2 * mib, WarmFrac: 0.25,
		BranchTags: 512, BranchBias: 0.97,
		ICacheMissRate: 0.003, ITLBMissRate: 0.001,
	},
	{
		Name: "482.sphinx3", Number: 482, Suite: SpecFP,
		Mix:         Mix{FPMul: 0.20, FPAdd: 0.21, FPShuf: 0.03, IntAdd: 0.10, Load: 0.31, Store: 0.06, Branch: 0.08, Nop: 0.01},
		MeanDepDist: 7.0, Dep2Prob: 0.25, IndepFrac: 0.40, PointerChaseFrac: 0.15,
		FootprintBytes: 8 * mib, Pattern: PatternMixed, StrideBytes: 8, RandomFrac: 0.6,
		HotBytes: 16 * kib, HotFrac: 0.40,
		WarmBytes: 2 * mib, WarmFrac: 0.30,
		BranchTags: 512, BranchBias: 0.94,
		ICacheMissRate: 0.002, ITLBMissRate: 0.001,
	},
}

// cloudSuite models the four latency-sensitive services. Per Finding 5
// their functional-unit behaviour resembles SPEC_INT; per Finding 8 they
// are far more contentious at the L3 (large shared-cache footprints) while
// showing SPEC-like sensitivity.
var cloudSuite = []Spec{
	{
		Name: "web-search", Suite: Cloud,
		Mix:         Mix{IntAdd: 0.38, IntMul: 0.02, Load: 0.28, Store: 0.10, Branch: 0.21, Nop: 0.01},
		MeanDepDist: 4.5, Dep2Prob: 0.20, IndepFrac: 0.25, PointerChaseFrac: 0.35,
		FootprintBytes: 10 * mib, Pattern: PatternMixed, StrideBytes: 8, RandomFrac: 0.7,
		HotBytes: 32 * kib, HotFrac: 0.35,
		WarmBytes: 6 * mib, WarmFrac: 0.35,
		BranchTags: 4096, BranchBias: 0.90,
		ICacheMissRate: 0.020, ITLBMissRate: 0.010,
		Threads:     6,
		ServiceRate: 2000, ArrivalRate: 1000, ReportsPercentile: true,
	},
	{
		Name: "data-caching", Suite: Cloud,
		Mix:         Mix{IntAdd: 0.34, Load: 0.31, Store: 0.12, Branch: 0.21, Nop: 0.02},
		MeanDepDist: 4.0, Dep2Prob: 0.15, IndepFrac: 0.25, PointerChaseFrac: 0.40,
		FootprintBytes: 20 * mib, Pattern: PatternRandom,
		HotBytes: 32 * kib, HotFrac: 0.30,
		WarmBytes: 8 * mib, WarmFrac: 0.35,
		BranchTags: 1024, BranchBias: 0.92,
		ICacheMissRate: 0.008, ITLBMissRate: 0.004,
		Threads:     6,
		ServiceRate: 5000, ArrivalRate: 2500, ReportsPercentile: true,
	},
	{
		Name: "data-serving", Suite: Cloud,
		Mix:         Mix{IntAdd: 0.33, IntMul: 0.01, Load: 0.30, Store: 0.13, Branch: 0.21, Nop: 0.02},
		MeanDepDist: 4.0, Dep2Prob: 0.15, IndepFrac: 0.22, PointerChaseFrac: 0.40,
		FootprintBytes: 24 * mib, Pattern: PatternRandom,
		HotBytes: 32 * kib, HotFrac: 0.30,
		WarmBytes: 8 * mib, WarmFrac: 0.30,
		BranchTags: 2048, BranchBias: 0.90,
		ICacheMissRate: 0.015, ITLBMissRate: 0.008,
		Threads:     6,
		ServiceRate: 1500, ArrivalRate: 700, ReportsPercentile: false,
	},
	{
		Name: "graph-analytics", Suite: Cloud,
		Mix:         Mix{IntAdd: 0.35, Load: 0.33, Store: 0.08, Branch: 0.21, Nop: 0.03},
		MeanDepDist: 3.5, Dep2Prob: 0.15, IndepFrac: 0.20, PointerChaseFrac: 0.50,
		FootprintBytes: 48 * mib, Pattern: PatternRandom,
		HotBytes: 24 * kib, HotFrac: 0.30,
		WarmBytes: 6 * mib, WarmFrac: 0.30,
		BranchTags: 512, BranchBias: 0.88,
		ICacheMissRate: 0.003, ITLBMissRate: 0.002,
		Threads:     6,
		ServiceRate: 800, ArrivalRate: 350, ReportsPercentile: false,
	},
}

// SPECCPU2006 returns the 29 SPEC CPU2006 application models.
func SPECCPU2006() []*Spec { return refs(specCPU2006) }

// CloudSuiteApps returns the four CloudSuite application models.
func CloudSuiteApps() []*Spec { return refs(cloudSuite) }

// All returns every application model (SPEC then CloudSuite).
func All() []*Spec { return append(SPECCPU2006(), CloudSuiteApps()...) }

func refs(specs []Spec) []*Spec {
	out := make([]*Spec, len(specs))
	for i := range specs {
		out[i] = &specs[i]
	}
	return out
}

// ByName looks an application up by its exact name.
func ByName(name string) (*Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown application %q", name)
}

// EvenSPEC returns the even-numbered SPEC benchmarks, OddSPEC the odd ones;
// the paper uses this parity split for train/test set construction.
func EvenSPEC() []*Spec { return byParity(0) }

// OddSPEC returns the odd-numbered SPEC benchmarks.
func OddSPEC() []*Spec { return byParity(1) }

func byParity(rem int) []*Spec {
	var out []*Spec
	for _, s := range SPECCPU2006() {
		if s.Number%2 == rem {
			out = append(out, s)
		}
	}
	return out
}
