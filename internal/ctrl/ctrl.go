// Package ctrl closes the loop the paper leaves open: SMiTe's pipeline is
// offline — characterize, fit, place — but under drifting workloads the
// fitted prediction surface goes stale and placements silently blow their
// SLOs. This package turns the static predictor into an online system
// (ROADMAP item 5, DESIGN.md §14) out of three pieces:
//
//   - a drift Detector: a per-cell windowed CUSUM test comparing observed
//     degradation (internal/obs/timeline samples on live co-locations, or
//     the measured surface of the cluster simulator) against the tiered
//     prediction ± its surrogate error bound, so only error *beyond the
//     certificate*, sustained over several samples, triggers;
//   - a re-characterization Source: flagged applications are re-swept
//     either in-process (profile.SweepGrid batching, FitWithStore
//     warm starts — unchanged apps load from the content-addressed store,
//     drifted apps re-measure) or through a live qosd daemon's parallel
//     POST /v1/characterize path;
//   - a hot-swap actuator: refreshed models are installed behind the
//     cluster.TieredPredictor with SwapModels, bumping its generation
//     counter so in-flight predictions stay consistent and consumers can
//     tell pre- from post-refresh answers by Prediction.Gen.
//
// The migration actuator lives in internal/cluster (PolicyClosedLoop):
// the discrete-event simulator embeds a Detector per scheduling cell,
// re-scores a drift-confirmed machine's co-locations through the
// refreshed surface and migrates the worst offender — logged as typed
// trace events so replays stay bit-identical at any parallelism.
package ctrl

import (
	"context"
	"sync"

	"repro/internal/cluster"
	"repro/internal/obs/timeline"
	"repro/internal/surrogate"
)

// Config parameterises a Controller.
type Config struct {
	// Detector tunes the drift test (zero value = defaults).
	Detector DetectorConfig
	// Source performs re-characterization of flagged apps. Required.
	Source Source
	// Tiered, when non-nil, receives refreshed models via SwapModels on
	// every successful Step.
	Tiered *cluster.TieredPredictor
}

// Stats counts a controller's lifetime activity.
type Stats struct {
	DetectorStats
	// Recharacterized counts apps refreshed through the source; Swaps
	// counts generation bumps on the tiered predictor.
	Recharacterized, Swaps int
}

// StepResult reports one Step's actions.
type StepResult struct {
	// Apps are the re-characterized applications (sorted); empty when no
	// drift was pending.
	Apps []string
	// Gen is the tiered predictor's generation after the swap (0 when no
	// tiered predictor is attached or nothing was swapped).
	Gen uint64
}

// Controller wires detector, source and predictor into the closed loop.
// It is safe for concurrent use: observations can stream in from live
// co-locations while a Step re-characterizes in the background (the
// engine sweep runs outside the lock; only flag bookkeeping and the
// atomic swap are serialised).
type Controller struct {
	cfg Config

	mu      sync.Mutex
	det     *Detector
	flagged map[string][]int // app -> cells awaiting re-characterization
	stats   Stats
}

// New builds a controller. Source is required; Tiered is optional (a
// detector-only controller still flags and resets, useful in tests and
// in the simulator where the actuator is shard-local).
func New(cfg Config) *Controller {
	return &Controller{
		cfg:     cfg,
		det:     NewDetector(cfg.Detector),
		flagged: make(map[string][]int),
	}
}

// Observe feeds one observed-degradation sample for app's cell against
// the prediction that placed it, and reports whether this sample
// confirmed drift (flagging the app for the next Step).
func (c *Controller) Observe(app string, cell int, observed float64, pred cluster.Prediction) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.det.Observe(cell, observed, pred.Deg, pred.Bound) {
		return false
	}
	c.flagged[app] = append(c.flagged[app], cell)
	return true
}

// ObserveTimeline derives the observed degradation from live timeline
// samples — 1 − IPC/soloIPC over the windows' aggregated counter deltas —
// and feeds Observe. Samples with no retired work (or a non-positive
// soloIPC) observe nothing and leave the detector untouched.
func (c *Controller) ObserveTimeline(app string, cell int, samples []timeline.Sample, soloIPC float64, pred cluster.Prediction) bool {
	obs, ok := DegradationFromSamples(samples, soloIPC)
	if !ok {
		return false
	}
	return c.Observe(app, cell, obs, pred)
}

// Pending returns the apps currently flagged for re-characterization, in
// sorted order.
func (c *Controller) Pending() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return sortedApps(c.flagged)
}

// Stats returns the lifetime counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.DetectorStats = c.det.Stats()
	return s
}

// Step drains the flagged set: re-characterize every flagged app through
// the source, hot-swap the refreshed models behind the tiered predictor
// (one generation bump for the whole batch), and reset the detector
// state of the affected cells so detection restarts against the
// refreshed predictions. A failed re-characterization leaves flags and
// detector state untouched, so the next Step retries.
func (c *Controller) Step(ctx context.Context) (StepResult, error) {
	c.mu.Lock()
	apps := sortedApps(c.flagged)
	c.mu.Unlock()
	if len(apps) == 0 {
		return StepResult{}, nil
	}

	// The sweep is minutes of engine time; run it outside the lock so
	// observations keep streaming while it measures.
	models, err := c.cfg.Source.Recharacterize(ctx, apps)
	if err != nil {
		return StepResult{}, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	res := StepResult{Apps: apps}
	if c.cfg.Tiered != nil {
		swapped := make(map[string]*surrogate.Model, len(apps))
		for _, app := range apps {
			if m := models[app]; m != nil {
				swapped[app] = m
			}
		}
		res.Gen = c.cfg.Tiered.SwapModels(swapped)
		c.stats.Swaps++
	}
	for _, app := range apps {
		for _, cell := range c.flagged[app] {
			c.det.Reset(cell)
		}
		delete(c.flagged, app)
		c.stats.Recharacterized++
	}
	return res, nil
}

// DegradationFromSamples aggregates timeline counter deltas into one
// observed degradation: 1 − IPC/soloIPC over the samples' total
// instructions and cycles. The second return is false when nothing is
// observable (no samples, zero cycles, or non-positive soloIPC).
func DegradationFromSamples(samples []timeline.Sample, soloIPC float64) (float64, bool) {
	if soloIPC <= 0 {
		return 0, false
	}
	var instr, cycles uint64
	for _, s := range samples {
		instr += s.Delta.Instructions
		cycles += s.Delta.Cycles
	}
	if cycles == 0 {
		return 0, false
	}
	ipc := float64(instr) / float64(cycles)
	return 1 - ipc/soloIPC, true
}
