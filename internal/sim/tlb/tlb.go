// Package tlb implements a small set-associative data TLB with LRU
// replacement.
//
// The PMU baseline model in the paper (Equation 9) consumes
// dTLB-load-misses/cycle and dTLB-store-misses/cycle, so the simulator
// models the DTLB explicitly: each data access translates its page, and a
// miss adds a page-walk penalty to the access latency. Co-located contexts
// share the structure, so large-footprint neighbours evict translations —
// another minor interference channel absorbed by SMiTe's constant term.
package tlb

// ways is the associativity of the TLB (4-way, as on Sandy Bridge DTLBs).
const ways = 4

// TLB is a set-associative translation buffer with LRU replacement.
// It is not safe for concurrent use.
type TLB struct {
	pages     []uint64
	stamp     []uint64
	valid     []bool
	clock     uint64
	setMask   uint64
	pageShift uint

	hits   uint64
	misses uint64
}

// New builds a TLB with the given entry count (rounded down to a multiple
// of the associativity, minimum one set) over pages of pageBytes, which
// must be a power of two.
func New(entries, pageBytes int) *TLB {
	if entries <= 0 {
		panic("tlb: entries must be positive")
	}
	if pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic("tlb: page size must be a positive power of two")
	}
	sets := entries / ways
	if sets < 1 {
		sets = 1
	}
	// Round sets down to a power of two for mask indexing.
	for sets&(sets-1) != 0 {
		sets &= sets - 1
	}
	shift := uint(0)
	for p := pageBytes; p > 1; p >>= 1 {
		shift++
	}
	n := sets * ways
	return &TLB{
		pages:     make([]uint64, n),
		stamp:     make([]uint64, n),
		valid:     make([]bool, n),
		setMask:   uint64(sets - 1),
		pageShift: shift,
	}
}

// Entries returns the total entry count.
func (t *TLB) Entries() int { return len(t.pages) }

// Access translates addr, filling on a miss, and returns true on a hit.
func (t *TLB) Access(addr uint64) bool {
	t.clock++
	page := addr >> t.pageShift
	base := int(page&t.setMask) * ways
	victim := base
	oldest := ^uint64(0)
	for i := base; i < base+ways; i++ {
		if t.valid[i] && t.pages[i] == page {
			t.hits++
			t.stamp[i] = t.clock
			return true
		}
		if !t.valid[i] {
			if oldest != 0 {
				victim = i
				oldest = 0
			}
			continue
		}
		if t.stamp[i] < oldest {
			victim = i
			oldest = t.stamp[i]
		}
	}
	t.misses++
	t.valid[victim] = true
	t.pages[victim] = page
	t.stamp[victim] = t.clock
	return false
}

// Stats returns cumulative hits and misses.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }

// ResetStats zeroes the counters, keeping resident translations.
func (t *TLB) ResetStats() { t.hits, t.misses = 0, 0 }

// Flush invalidates all entries and zeroes statistics.
func (t *TLB) Flush() {
	for i := range t.valid {
		t.valid[i] = false
	}
	t.clock = 0
	t.ResetStats()
}
