package smite

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/model"
)

func sampleModel() Model {
	var inner model.Smite
	for d := range inner.Coef {
		inner.Coef[d] = float64(d) * 0.1
	}
	inner.Intercept = -0.02
	return Model{inner: inner}
}

func TestModelRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, sampleModel()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wc, wi := sampleModel().Coefficients()
	gc, gi := got.Coefficients()
	if wc != gc || wi != gi {
		t.Errorf("round trip changed the model: %v/%g vs %v/%g", gc, gi, wc, wi)
	}
}

func TestProfilesRoundTrip(t *testing.T) {
	chars := []Characterization{
		{App: "a", SoloIPC: 1.5},
		{App: "b", SoloIPC: 0.4},
	}
	chars[0].Sen[DimFPAdd] = 0.4
	chars[1].Con[DimL3] = 0.6
	var buf bytes.Buffer
	if err := SaveProfiles(&buf, chars); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfiles(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Sen != chars[0].Sen || got[1].Con != chars[1].Con {
		t.Errorf("round trip changed the profiles: %+v", got)
	}
}

func TestLoadRejectsWrongDimensions(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, sampleModel()); err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(buf.String(), "FP_MUL(P0)", "SOMETHING_ELSE", 1)
	if _, err := LoadModel(strings.NewReader(tampered)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("dimension rename: got %v, want ErrDimensionMismatch", err)
	}
	tampered = strings.Replace(buf.String(), `"version": 1`, `"version": 9`, 1)
	if _, err := LoadModel(strings.NewReader(tampered)); !errors.Is(err, ErrVersionSkew) {
		t.Errorf("unknown version: got %v, want ErrVersionSkew", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(strings.NewReader("not json")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("garbage model: got %v, want ErrCorrupt", err)
	}
	if _, err := LoadProfiles(strings.NewReader("{}")); !errors.Is(err, ErrVersionSkew) {
		t.Errorf("empty profile file (version 0): got %v, want ErrVersionSkew", err)
	}
}

// The serving daemon maps each load-failure class to HTTP 422 with a
// distinguishing error code, so every class must be errors.Is-matchable
// on both the profile and the model path. These are exactly the failure
// paths a POST /v1/profiles upload exercises.
func TestLoadFailureTyping(t *testing.T) {
	var profBuf bytes.Buffer
	if err := SaveProfiles(&profBuf, []Characterization{{App: "a", SoloIPC: 1}}); err != nil {
		t.Fatal(err)
	}
	prof := profBuf.String()
	var modBuf bytes.Buffer
	if err := SaveModel(&modBuf, sampleModel()); err != nil {
		t.Fatal(err)
	}
	mod := modBuf.String()

	cases := []struct {
		name  string
		input string
		load  func(string) error
		want  error
	}{
		{"profiles/truncated", prof[:len(prof)/2], loadProfilesErr, ErrCorrupt},
		{"profiles/not-json", "]", loadProfilesErr, ErrCorrupt},
		{"profiles/version-skew", strings.Replace(prof, `"version": 1`, `"version": 2`, 1), loadProfilesErr, ErrVersionSkew},
		{"profiles/dimension-dropped", strings.Replace(prof, `    "FP_MUL(P0)",`+"\n", "", 1), loadProfilesErr, ErrDimensionMismatch},
		{"profiles/dimension-reordered", swapFirstDims(t, prof), loadProfilesErr, ErrDimensionMismatch},
		{"model/truncated", mod[:len(mod)/3], loadModelErr, ErrCorrupt},
		{"model/version-skew", strings.Replace(mod, `"version": 1`, `"version": 7`, 1), loadModelErr, ErrVersionSkew},
		{"model/dimension-dropped", strings.Replace(mod, `    "FP_MUL(P0)",`+"\n", "", 1), loadModelErr, ErrDimensionMismatch},
		{"model/coefficient-count", strings.Replace(mod, "\n    0.1,", "", 1), loadModelErr, ErrDimensionMismatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.input == prof || tc.input == mod {
				t.Fatal("tamper pattern did not match the encoded file")
			}
			err := tc.load(tc.input)
			if !errors.Is(err, tc.want) {
				t.Errorf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func loadProfilesErr(s string) error { _, err := LoadProfiles(strings.NewReader(s)); return err }
func loadModelErr(s string) error    { _, err := LoadModel(strings.NewReader(s)); return err }

// swapFirstDims exchanges the first two dimension names in an encoded
// file, preserving count but breaking order.
func swapFirstDims(t *testing.T, s string) string {
	t.Helper()
	a, b := dimensionNames()[0], dimensionNames()[1]
	out := strings.Replace(s, `"`+a+`"`, `"@TMP@"`, 1)
	out = strings.Replace(out, `"`+b+`"`, `"`+a+`"`, 1)
	out = strings.Replace(out, `"@TMP@"`, `"`+b+`"`, 1)
	if out == s {
		t.Fatal("dimension swap did not change the file")
	}
	return out
}

// Corrupted files must come back as structured errors, never as panics or
// silently wrong data — the scheduler acts on these profiles.

func TestLoadRejectsTruncatedFiles(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, sampleModel()); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	for _, frac := range []int{0, 1, 2, 3} { // empty, quarter, half, three-quarter
		cut := full[:len(full)*frac/4]
		if _, err := LoadModel(strings.NewReader(cut)); err == nil {
			t.Errorf("model truncated to %d/%d bytes accepted", len(cut), len(full))
		}
	}

	buf.Reset()
	chars := []Characterization{{App: "a", SoloIPC: 1.0}}
	if err := SaveProfiles(&buf, chars); err != nil {
		t.Fatal(err)
	}
	cut := buf.String()[:buf.Len()/2]
	if _, err := LoadProfiles(strings.NewReader(cut)); err == nil {
		t.Error("half-truncated profile file accepted")
	}
}

func TestLoadRejectsWrongCoefficientCount(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, sampleModel()); err != nil {
		t.Fatal(err)
	}
	// Drop one coefficient but keep the file otherwise valid.
	tampered := strings.Replace(buf.String(), "\n    0.1,", "", 1)
	if tampered == buf.String() {
		t.Fatal("tamper pattern did not match the encoded file")
	}
	_, err := LoadModel(strings.NewReader(tampered))
	if err == nil {
		t.Fatal("model with missing coefficient accepted")
	}
	if !strings.Contains(err.Error(), "coefficients") {
		t.Errorf("error %q does not name the coefficient mismatch", err)
	}
}

// Unknown fields are tolerated by design: a newer build may add fields, and
// an older reader should still load what it understands (the version field
// guards incompatible changes).
func TestLoadToleratesUnknownFields(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, sampleModel()); err != nil {
		t.Fatal(err)
	}
	extended := strings.Replace(buf.String(), `"version": 1,`, `"version": 1, "future_field": {"nested": [1,2,3]},`, 1)
	got, err := LoadModel(strings.NewReader(extended))
	if err != nil {
		t.Fatalf("unknown field rejected: %v", err)
	}
	wc, wi := sampleModel().Coefficients()
	gc, gi := got.Coefficients()
	if wc != gc || wi != gi {
		t.Error("unknown field corrupted the loaded model")
	}
}
