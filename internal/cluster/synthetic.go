package cluster

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/model"
	"repro/internal/surrogate"
	"repro/internal/xrand"
)

// SyntheticGenWorld derives a generation-specific synthetic co-location
// world for heterogeneous fleets: the same application populations, but a
// degradation surface seeded by the generation name — machines of
// different generations interfere differently, so a co-location that
// violates on one part may fit on another.
func SyntheticGenWorld(gen string, nLat, nBatch, maxInstances int, seed uint64) (*surrogate.Set, *Table, error) {
	h := fnv.New64a()
	h.Write([]byte(gen))
	return SyntheticWorld(nLat, nBatch, maxInstances, seed^h.Sum64())
}

// SyntheticWorld is a deterministic co-location universe for scale
// studies: a surrogate set whose analytic curves stand in for fitted
// ones, and a measured degradation table derived from the same surface
// plus seeded noise. It lets the 10k-machine/1M-event simulations and
// benchmarks exercise the full Predictor seam — surrogate tier first,
// table fallback — without hours of engine characterization, while
// keeping every number reproducible from the seed.
func SyntheticWorld(nLat, nBatch, maxInstances int, seed uint64) (*surrogate.Set, *Table, error) {
	if nLat <= 0 || nBatch <= 0 || maxInstances <= 0 {
		return nil, nil, fmt.Errorf("cluster: synthetic world needs positive dimensions, got %d/%d/%d", nLat, nBatch, maxInstances)
	}
	rng := xrand.New(seed ^ 0x57A71C)

	lats := make([]string, nLat)
	for i := range lats {
		lats[i] = fmt.Sprintf("latsvc-%02d", i)
	}
	batches := make([]string, nBatch)
	for i := range batches {
		batches[i] = fmt.Sprintf("batch-%02d", i)
	}

	set := &surrogate.Set{Machine: "synthetic", Models: make(map[string]*surrogate.Model)}
	eq3 := &model.Smite{Intercept: 0.01}
	for d := range eq3.Coef {
		eq3.Coef[d] = 0.08 + 0.03*float64(d%5)
	}
	set.Eq3 = eq3

	mkModel := func(app string, sen, con float64) *surrogate.Model {
		m := &surrogate.Model{App: app, SoloIPC: 1, Intensities: []float64{0.25, 0.5, 1}}
		for d := range m.Sen {
			// Per-dimension spread around the app's overall sensitivity and
			// contentiousness; √x gives the saturating early-contention shape.
			s := sen * (0.6 + 0.8*rng.Float64())
			c := con * (0.6 + 0.8*rng.Float64())
			m.Sen[d] = surrogate.Curve{Coef: [3]float64{s}, MaxAbsErr: 0.004, MeanAbsErr: 0.002}
			m.Con[d] = surrogate.Curve{Coef: [3]float64{0.6 * c, 0.4 * c, 0}, MaxAbsErr: 0.004, MeanAbsErr: 0.002}
		}
		set.Models[app] = m
		return m
	}
	for _, lat := range lats {
		mkModel(lat, 0.3+0.5*rng.Float64(), 0.2+0.3*rng.Float64())
	}
	for _, b := range batches {
		mkModel(b, 0.2+0.3*rng.Float64(), 0.3+0.6*rng.Float64())
	}

	// The measured table is the surrogate surface plus seeded measurement
	// noise, so predictions are accurate but not exact — SMiTe and Oracle
	// genuinely differ, as on real hardware.
	tbl := NewTable(lats, batches, maxInstances)
	sp := &SurrogatePredictor{Set: set, Capacity: maxInstances}
	for _, lat := range lats {
		for _, b := range batches {
			for n := 1; n <= maxInstances; n++ {
				base, err := sp.Predict(lat, b, n)
				if err != nil {
					return nil, nil, err
				}
				actual := clamp01(base.Deg + 0.01*rng.Norm())
				predicted := clamp01(actual + 0.005*rng.Norm())
				tbl.Set(lat, b, n, Entry{Actual: actual, Predicted: predicted})
			}
		}
	}
	return set, tbl, nil
}

func clamp01(v float64) float64 {
	return math.Min(1, math.Max(0, v))
}
