package cluster

import (
	"fmt"
	"sync/atomic"

	"repro/internal/surrogate"
)

// Prediction tiers, reported in Prediction.Tier. The qosd daemon reports
// the same strings on its wire responses, so a scheduler can audit which
// tier answered regardless of whether it consulted the seam in-process or
// over HTTP.
const (
	// TierTable: answered from an engine-measured degradation table — the
	// authoritative surface, carrying no error bound.
	TierTable = "table"
	// TierSurrogate: answered in microseconds from fitted surrogate
	// curves; the prediction carries the propagated error bound.
	TierSurrogate = "surrogate"
	// TierLegacy: answered through a deprecated pre-unification adapter
	// (AdaptPredictor) whose implementation predates the tier field.
	TierLegacy = "legacy"
)

// Prediction is the unified answer of the Predictor seam: the predicted
// degradation plus everything the old Predictor/BoundedPredictor split
// forced callers to type-assert for — the error bound (zero on measured
// answers), the serving tier, and the generation of the predictor state
// that produced it (non-zero only for hot-swappable predictors, so a
// closed-loop controller can tell stale answers from refreshed ones).
type Prediction struct {
	// Deg is the predicted degradation (0.07 = 7% slower).
	Deg float64
	// Bound is an upper bound on the answer's deviation from the
	// engine-measured truth; zero when the answer is the measured surface
	// itself. The SLO admission policy inflates predictions by this bound
	// before checking them against tail-latency budgets.
	Bound float64
	// Tier reports which tier produced the answer (Tier* constants).
	Tier string
	// Gen is the serving predictor's generation counter at answer time;
	// zero for predictors without hot-swappable state.
	Gen uint64
}

// Predictor supplies predicted degradations from outside a degradation
// table — the surrogate tier, the qosd serving daemon, or any other
// prediction source a study or simulator consults. Implementations must
// be deterministic for a given (lat, batch, n) and safe for concurrent
// use (BuildPredTable fans cells across workers).
type Predictor interface {
	// Predict returns the latency application's predicted degradation —
	// with its bound, tier and generation — when co-located with n
	// instances of the batch application.
	Predict(lat, batch string, n int) (Prediction, error)
}

// DegradationPredictor is the pre-unification prediction seam.
//
// Deprecated: implement Predictor; wrap existing implementations with
// AdaptPredictor during migration. See MIGRATION.md.
type DegradationPredictor interface {
	// PredictDegradation returns the latency application's predicted
	// degradation when co-located with n instances of the batch app.
	PredictDegradation(lat, batch string, n int) (float64, error)
}

// BoundedPredictor is the pre-unification extension carrying the error
// bound next to the degradation.
//
// Deprecated: implement Predictor, whose Prediction carries the bound as
// a first-class field. See MIGRATION.md.
type BoundedPredictor interface {
	DegradationPredictor
	PredictWithBound(lat, batch string, n int) (deg, bound float64, err error)
}

// AdaptPredictor lifts a deprecated DegradationPredictor (optionally a
// BoundedPredictor) onto the unified Predictor seam. Implementations that
// already satisfy Predictor are returned unchanged; nil maps to nil.
//
// Deprecated: migrate the implementation to Predictor; this adapter is
// the one-release bridge and carries the only sanctioned BoundedPredictor
// type assertion.
func AdaptPredictor(p DegradationPredictor) Predictor {
	if p == nil {
		return nil
	}
	if up, ok := p.(Predictor); ok {
		return up
	}
	return legacyPredictor{p}
}

// legacyPredictor bridges the deprecated seam onto Predict.
type legacyPredictor struct {
	p DegradationPredictor
}

func (l legacyPredictor) Predict(lat, batch string, n int) (Prediction, error) {
	if b, ok := l.p.(BoundedPredictor); ok {
		deg, bound, err := b.PredictWithBound(lat, batch, n)
		if err != nil {
			return Prediction{}, err
		}
		return Prediction{Deg: deg, Bound: bound, Tier: TierLegacy}, nil
	}
	deg, err := l.p.PredictDegradation(lat, batch, n)
	if err != nil {
		return Prediction{}, err
	}
	return Prediction{Deg: deg, Tier: TierLegacy}, nil
}

// TablePredictor serves the Predictor seam from a degradation Table's
// baked-in Predicted entries — the engine-measured prediction surface the
// scale-out studies use. It is the ground-truth fallback of the tiered
// predictor below.
type TablePredictor struct {
	Table *Table
}

// Predict implements Predictor; table answers are the measured surface,
// so the bound is zero.
func (p *TablePredictor) Predict(lat, batch string, n int) (Prediction, error) {
	e, err := p.Table.Get(lat, batch, n)
	if err != nil {
		return Prediction{}, err
	}
	return Prediction{Deg: e.Predicted, Tier: TierTable}, nil
}

// PredictDegradation implements the deprecated seam.
//
// Deprecated: use Predict.
func (p *TablePredictor) PredictDegradation(lat, batch string, n int) (float64, error) {
	pred, err := p.Predict(lat, batch, n)
	return pred.Deg, err
}

// PredictWithBound implements the deprecated seam.
//
// Deprecated: use Predict.
func (p *TablePredictor) PredictWithBound(lat, batch string, n int) (float64, float64, error) {
	pred, err := p.Predict(lat, batch, n)
	return pred.Deg, pred.Bound, err
}

// SurrogatePredictor adapts a fitted surrogate.Set with an embedded
// Equation 3 model to the Predictor seam, answering in microseconds
// without touching the engine. Instance-count dependence is modelled
// analytically on the surrogate curves: n stacked instances of the batch
// application exert its contentiousness curves evaluated at intensity
// n/Capacity (more siblings, more pressure, saturating at full
// occupancy), and — mirroring model.Smite.PredictPartial — the intercept,
// which must vanish at n = 0, is scaled by the occupied fraction. The
// victim's sensitivities are its full-intensity values, as in the
// pairwise surrogate path.
type SurrogatePredictor struct {
	Set *surrogate.Set
	// Capacity is the number of idle sibling contexts instances stack on
	// (the study's ContextsPerServer − ThreadsPerServer).
	Capacity int
}

// predict returns the surrogate answer with its propagated error bound
// (the same soundness argument as surrogate.Set.PredictWith, with the
// aggressor curves evaluated at the occupancy-scaled intensity).
func (p *SurrogatePredictor) predict(lat, batch string, n int) (surrogate.Prediction, error) {
	if p.Set == nil || p.Set.Eq3 == nil {
		return surrogate.Prediction{}, fmt.Errorf("cluster: surrogate predictor needs a set with an embedded Eq3 model")
	}
	if p.Capacity <= 0 {
		return surrogate.Prediction{}, fmt.Errorf("cluster: surrogate predictor capacity must be positive, got %d", p.Capacity)
	}
	mv, err := p.Set.Model(lat)
	if err != nil {
		return surrogate.Prediction{}, err
	}
	ma, err := p.Set.Model(batch)
	if err != nil {
		return surrogate.Prediction{}, err
	}
	x := float64(n) / float64(p.Capacity)
	if x > 1 {
		x = 1
	}
	eq3 := *p.Set.Eq3
	pred := surrogate.Prediction{Degradation: eq3.Intercept * x}
	for d := range eq3.Coef {
		sen, con := mv.Sen[d].At(1), ma.Con[d].At(x)
		es, ec := mv.Sen[d].MaxAbsErr, ma.Con[d].MaxAbsErr
		pred.Degradation += eq3.Coef[d] * sen * con
		pred.Bound += abs(eq3.Coef[d]) * (abs(sen)*ec + es*abs(con) + es*ec)
	}
	return pred, nil
}

// Predict implements Predictor with the propagated surrogate certificate.
func (p *SurrogatePredictor) Predict(lat, batch string, n int) (Prediction, error) {
	pred, err := p.predict(lat, batch, n)
	if err != nil {
		return Prediction{}, err
	}
	return Prediction{Deg: pred.Degradation, Bound: pred.Bound, Tier: TierSurrogate}, nil
}

// PredictDegradation implements the deprecated seam.
//
// Deprecated: use Predict.
func (p *SurrogatePredictor) PredictDegradation(lat, batch string, n int) (float64, error) {
	pred, err := p.Predict(lat, batch, n)
	return pred.Deg, err
}

// PredictWithBound implements the deprecated seam.
//
// Deprecated: use Predict.
func (p *SurrogatePredictor) PredictWithBound(lat, batch string, n int) (float64, float64, error) {
	pred, err := p.Predict(lat, batch, n)
	return pred.Deg, pred.Bound, err
}

// tierState is the hot-swappable half of a TieredPredictor: the surrogate
// tier plus the generation that produced it. Readers load it once per
// Predict call, so a concurrent Swap never tears an in-flight answer.
type tierState struct {
	sur *SurrogatePredictor
	gen uint64
}

// TieredPredictor is the qosd serving policy at the Predictor seam:
// answer from the surrogate tier when its certificate clears the accuracy
// budget, fall back to the (engine-measured) predictor otherwise. The
// cluster simulator consults the seam only once per distinct
// (lat, batch, n) cell — BuildPredTable memoizes the surface — so even
// the fallback path costs a handful of calls per run.
//
// The surrogate tier is hot-swappable: a closed-loop controller that
// re-characterizes drifted applications installs the refreshed set with
// Swap/SwapModels, which bumps the generation counter stamped on every
// answer — in-flight predictions keep the set they started with, and
// consumers can tell pre- from post-refresh answers by Prediction.Gen.
type TieredPredictor struct {
	// Threshold is the largest surrogate error bound served before
	// falling back; zero means DefaultTierThreshold.
	Threshold float64
	// Fallback answers when the surrogate bound is too loose or the
	// surrogate has no model for an application.
	Fallback Predictor

	state atomic.Pointer[tierState]
}

// DefaultTierThreshold matches qosd.DefaultSurrogateThreshold: bounds
// above five degradation points fall back to measured predictions.
const DefaultTierThreshold = 0.05

// NewTieredPredictor builds the two-tier predictor: sur answers when its
// bound clears the threshold (DefaultTierThreshold; adjust via the
// Threshold field before first use), fallback otherwise. The initial
// surrogate state is generation 1.
func NewTieredPredictor(sur *SurrogatePredictor, fallback Predictor) *TieredPredictor {
	t := &TieredPredictor{Fallback: fallback}
	t.state.Store(&tierState{sur: sur, gen: 1})
	return t
}

// Generation returns the current surrogate-tier generation: 1 at
// construction, bumped by every Swap/SwapModels, 0 for a zero-value
// TieredPredictor that never had a surrogate tier.
func (t *TieredPredictor) Generation() uint64 {
	if st := t.state.Load(); st != nil {
		return st.gen
	}
	return 0
}

// Swap atomically replaces the whole surrogate set behind the tier and
// returns the bumped generation. The capacity carries over from the
// current state (or is taken as-is when the tier had none); a nil set
// disables the surrogate tier until the next swap.
func (t *TieredPredictor) Swap(set *surrogate.Set) uint64 {
	for {
		old := t.state.Load()
		next := &tierState{gen: 1}
		if old != nil {
			next.gen = old.gen + 1
		}
		if set != nil {
			capacity := 0
			if old != nil && old.sur != nil {
				capacity = old.sur.Capacity
			}
			next.sur = &SurrogatePredictor{Set: set, Capacity: capacity}
		}
		if t.state.CompareAndSwap(old, next) {
			return next.gen
		}
	}
}

// SwapModels installs refreshed surrogate models for just the given
// applications — the targeted re-characterization path: the current set
// is copied, the flagged apps' models replaced, and the copy swapped in
// under a bumped generation. Apps absent from the current set are added.
// Returns the new generation, or the unchanged current generation when
// models is empty or the tier has no surrogate set to refresh.
func (t *TieredPredictor) SwapModels(models map[string]*surrogate.Model) uint64 {
	if len(models) == 0 {
		return t.Generation()
	}
	for {
		old := t.state.Load()
		if old == nil || old.sur == nil || old.sur.Set == nil {
			return t.Generation()
		}
		cur := old.sur.Set
		set := &surrogate.Set{
			Machine:   cur.Machine,
			Placement: cur.Placement,
			Eq3:       cur.Eq3,
			Models:    make(map[string]*surrogate.Model, len(cur.Models)+len(models)),
		}
		for app, m := range cur.Models {
			set.Models[app] = m
		}
		for app, m := range models {
			set.Models[app] = m
		}
		next := &tierState{
			sur: &SurrogatePredictor{Set: set, Capacity: old.sur.Capacity},
			gen: old.gen + 1,
		}
		if t.state.CompareAndSwap(old, next) {
			return next.gen
		}
	}
}

// Predict implements Predictor: surrogate answers carry their certificate
// and tier, fallback answers keep the fallback's own bound and tier (zero
// bound for the measured table). Every answer is stamped with the tier's
// current generation.
func (t *TieredPredictor) Predict(lat, batch string, n int) (Prediction, error) {
	thr := t.Threshold
	if thr <= 0 {
		thr = DefaultTierThreshold
	}
	st := t.state.Load()
	var gen uint64
	if st != nil {
		gen = st.gen
	}
	if st != nil && st.sur != nil {
		if pred, err := st.sur.predict(lat, batch, n); err == nil && pred.Bound <= thr {
			return Prediction{Deg: pred.Degradation, Bound: pred.Bound, Tier: TierSurrogate, Gen: gen}, nil
		}
	}
	if t.Fallback == nil {
		return Prediction{}, fmt.Errorf("cluster: tiered predictor has no fallback for %s|%s|%d", lat, batch, n)
	}
	pred, err := t.Fallback.Predict(lat, batch, n)
	if err != nil {
		return Prediction{}, err
	}
	pred.Gen = gen
	return pred, nil
}

// PredictDegradation implements the deprecated seam.
//
// Deprecated: use Predict.
func (t *TieredPredictor) PredictDegradation(lat, batch string, n int) (float64, error) {
	pred, err := t.Predict(lat, batch, n)
	return pred.Deg, err
}

// PredictWithBound implements the deprecated seam.
//
// Deprecated: use Predict.
func (t *TieredPredictor) PredictWithBound(lat, batch string, n int) (float64, float64, error) {
	pred, err := t.Predict(lat, batch, n)
	return pred.Deg, pred.Bound, err
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
