package simtest

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/profile"
	"repro/internal/surrogate"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// lawSmite is a fixed Equation 3 coefficient vector for the surrogate
// laws: non-trivial, spread across dimensions, deterministic.
func lawSmite() model.Smite {
	var m model.Smite
	m.Intercept = 0.01
	for d := range m.Coef {
		m.Coef[d] = 0.2 + 0.1*float64(d)
	}
	return m
}

// TestSurrogateBoundContainment is the certificate law: for every seed's
// random workload pair, the surrogate prediction may deviate from the same
// Equation 3 model evaluated on freshly measured engine characterizations
// by at most the prediction's own recorded bound. The engine side runs on
// a fresh profiler (fresh caches), so the law simultaneously exercises fit
// determinism and residual-bound soundness.
func TestSurrogateBoundContainment(t *testing.T) {
	if testing.Short() {
		t.Skip("fit sweep per seed in short mode")
	}
	cfg := SmallIVB(2)
	eq3 := lawSmite()
	for seed := uint64(0); seed < numSeeds; seed++ {
		r := xrand.New(seed + 0xC4)
		specs := []*workload.Spec{
			RandomSpec(r, "rand-sur-a"),
			RandomSpec(r, "rand-sur-b"),
		}
		placement := RandomPlacement(r)
		opts := TinyOptions()
		opts.BaseSeed = seed + 1
		fo := surrogate.FitOptions{Intensities: []float64{RandomIntensity(r), 0.5}}

		set, err := surrogate.Fit(context.Background(), profile.NewProfiler(cfg, opts), specs, placement, fo)
		if err != nil {
			t.Fatalf("seed %d fit: %v", seed, err)
		}
		engine, err := profile.NewProfiler(cfg, opts).CharacterizeAll(specs, placement)
		if err != nil {
			t.Fatalf("seed %d engine: %v", seed, err)
		}
		byName := make(map[string]profile.Characterization, len(engine))
		for _, ch := range engine {
			byName[ch.App] = ch
		}
		for _, v := range specs {
			for _, a := range specs {
				pred, err := set.PredictWith(eq3, v.Name, a.Name)
				if err != nil {
					t.Fatalf("seed %d %s|%s: %v", seed, v.Name, a.Name, err)
				}
				engDeg := eq3.Predict(model.PairObs{
					SenA: byName[v.Name].Sen,
					ConB: byName[a.Name].Con,
				})
				gap := math.Abs(pred.Degradation - engDeg)
				t.Logf("seed %2d %s %s|%s deg=%+.4f eng=%+.4f gap=%.5f bound=%.5f",
					seed, placement, v.Name, a.Name, pred.Degradation, engDeg, gap, pred.Bound)
				if gap > pred.Bound+1e-9 {
					t.Errorf("seed %d (%s): |surrogate−engine| = %.6f exceeds the recorded bound %.6f for %s vs %s",
						seed, placement, gap, pred.Bound, v.Name, a.Name)
				}
			}
		}
	}
}

// TestSurrogateFitParallelismIndependence extends the
// scheduling-transparency law to the fitter: the fitted curves *and their
// recorded error bounds* must be bit-identical at any worker count, since
// Parallelism is an execution detail of the underlying sweep.
func TestSurrogateFitParallelismIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("fit sweep per worker count in short mode")
	}
	cfg := SmallIVB(2)
	for seed := uint64(0); seed < numSeeds; seed++ {
		r := xrand.New(seed + 0xF1)
		specs := []*workload.Spec{RandomSpec(r, "rand-surpar")}
		placement := RandomPlacement(r)
		fo := surrogate.FitOptions{Intensities: []float64{0.25, RandomIntensity(r)}}

		var baseline *surrogate.Set
		for _, workers := range []int{1, 2, 8} {
			opts := TinyOptions()
			opts.BaseSeed = seed + 1
			opts.Parallelism = workers
			set, err := surrogate.Fit(context.Background(), profile.NewProfiler(cfg, opts), specs, placement, fo)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if baseline == nil {
				baseline = set
			} else if !reflect.DeepEqual(baseline, set) {
				t.Errorf("seed %d (%s): Parallelism=%d changed the fitted surrogate (curves or bounds)",
					seed, placement, workers)
			}
		}
	}
}
