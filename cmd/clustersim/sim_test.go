package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
)

// Bad sim invocations must be rejected before any simulation work, with
// typed errors naming the offending flag (main exits 2 on them).
func TestSimFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		flag string
	}{
		{"zero machines", []string{"-sim", "-machines", "0"}, "machines"},
		{"negative machines", []string{"-sim", "-machines", "-5"}, "machines"},
		{"zero duration", []string{"-sim", "-duration", "0"}, "duration"},
		{"negative duration", []string{"-sim", "-duration", "-1"}, "duration"},
		{"negative churn", []string{"-sim", "-churn", "-0.1"}, "churn"},
		{"negative arrival", []string{"-sim", "-arrival", "-10"}, "arrival"},
		{"zero target", []string{"-sim", "-target", "0"}, "target"},
		{"target above one", []string{"-sim", "-target", "1.5"}, "target"},
		{"unknown policy", []string{"-sim", "-policy", "greedy"}, "policy"},
		{"tail qos", []string{"-sim", "-qos", "tail"}, "qos"},
		{"negative shards", []string{"-sim", "-shards", "-1"}, "shards"},
		{"negative parallelism", []string{"-sim", "-parallelism", "-2"}, "parallelism"},
		{"replay negative parallelism", []string{"-replay", "x.trace", "-parallelism", "-1"}, "parallelism"},
		{"malformed slo classes", []string{"-sim", "-policy", "slo", "-slo-classes", "critical:bogus"}, "slo-classes"},
		{"empty slo class name", []string{"-sim", "-policy", "slo", "-slo-classes", ":20ms"}, "slo-classes"},
		{"duplicate slo class", []string{"-sim", "-policy", "slo", "-slo-classes", "a:20ms,a:40ms"}, "slo-classes"},
		{"slo percentile out of range", []string{"-sim", "-policy", "slo", "-slo-classes", "a:20ms:1.5"}, "slo-classes"},
		{"slo headroom one", []string{"-sim", "-policy", "slo", "-slo-headroom", "1"}, "slo-headroom"},
		{"negative slo headroom", []string{"-sim", "-policy", "slo", "-slo-headroom", "-0.1"}, "slo-headroom"},
		{"zero slo mu", []string{"-sim", "-policy", "slo", "-slo-mu", "0"}, "slo-mu"},
		{"zero slo lambda", []string{"-sim", "-policy", "slo", "-slo-lambda", "0"}, "slo-lambda"},
		{"isol without policy", []string{"-sim", "-isol", "a:0.5:0.1"}, "isol"},
		{"malformed isol entry", []string{"-sim", "-policy", "isolation", "-isol", "a:0.5"}, "isol"},
		{"isol degscale rises", []string{"-sim", "-policy", "isolation", "-isol", "a:0.5:0.1,b:0.7:0.2"}, "isol"},
		{"isol degscale zero", []string{"-sim", "-policy", "isolation", "-isol", "a:0:0.1"}, "isol"},
		{"isolation with drift", []string{"-sim", "-policy", "isolation", "-drift-factor", "1.5"}, "drift-factor"},
		{"unknown alloc", []string{"-sim", "-alloc", "tetris"}, "alloc"},
		{"alloc under random", []string{"-sim", "-policy", "random", "-alloc", "spread"}, "alloc"},
		{"malformed machine mix", []string{"-sim", "-machine-mix", "snb"}, "machine-mix"},
		{"unknown machine gen", []string{"-sim", "-machine-mix", "alpha=1"}, "machine-mix"},
		{"duplicate machine gen", []string{"-sim", "-machine-mix", "snb=1,snb=2"}, "machine-mix"},
		{"zero mix weight", []string{"-sim", "-machine-mix", "snb=0"}, "machine-mix"},
		{"mix with closedloop", []string{"-sim", "-policy", "closedloop", "-machine-mix", "snb=1"}, "machine-mix"},
		{"mix with drift", []string{"-sim", "-machine-mix", "snb=1", "-drift-factor", "1.2"}, "machine-mix"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(context.Background(), tc.args, &out)
			if err == nil {
				t.Fatal("invalid invocation accepted")
			}
			var fe *FlagError
			if !errors.As(err, &fe) {
				t.Fatalf("error %v is not a *FlagError", err)
			}
			if fe.Flag != tc.flag {
				t.Errorf("error names flag %q, want %q", fe.Flag, tc.flag)
			}
		})
	}
}

func TestSimReplayMissingTrace(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-replay", filepath.Join(t.TempDir(), "nope.trace")}, &out)
	if err == nil {
		t.Fatal("missing trace accepted")
	}
	var fe *FlagError
	if errors.As(err, &fe) {
		t.Fatalf("missing file surfaced as flag error %v", err)
	}
}

// TestSimRecordReplay drives the full CLI loop: run with -trace-out,
// replay the trace at a different parallelism, and require the identical
// summary — the CLI-level face of the replay-determinism law.
func TestSimRecordReplay(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "run.trace")
	sum1 := filepath.Join(dir, "run.json")
	sum2 := filepath.Join(dir, "replay.json")

	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-sim", "-machines", "80", "-duration", "1", "-churn", "0.05", "-seed", "9",
		"-trace-out", trace, "-summary-json", sum1, "-parallelism", "1",
	}, &out)
	if err != nil {
		t.Fatalf("record run: %v", err)
	}
	for _, want := range []string{"trace recorded to", "discrete-event cluster sim", "utilisation:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q in:\n%s", want, out.String())
		}
	}

	out.Reset()
	err = run(context.Background(), []string{
		"-replay", trace, "-summary-json", sum2, "-parallelism", "8",
	}, &out)
	if err != nil {
		t.Fatalf("replay run: %v", err)
	}
	a, err := os.ReadFile(sum1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(sum2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("replay summary differs from recorded run:\n%s\nvs\n%s", a, b)
	}
}

// TestSimSummaryJSONSchema pins the CLI-emitted summary: strict decode
// into cluster.Summary (no unknown fields) and the schema version.
func TestSimSummaryJSONSchema(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-sim", "-machines", "40", "-duration", "0.5", "-seed", "3", "-summary-json", "-",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	i := strings.Index(out.String(), "{")
	if i < 0 {
		t.Fatalf("no JSON in output:\n%s", out.String())
	}
	dec := json.NewDecoder(strings.NewReader(out.String()[i:]))
	dec.DisallowUnknownFields()
	var s cluster.Summary
	if err := dec.Decode(&s); err != nil {
		t.Fatalf("summary JSON does not decode strictly: %v", err)
	}
	if s.SchemaVersion != cluster.SummarySchemaVersion {
		t.Errorf("schema_version %d, want %d", s.SchemaVersion, cluster.SummarySchemaVersion)
	}
	if s.Machines.Start != 40 {
		t.Errorf("machines.start %d, want 40", s.Machines.Start)
	}
	if s.Events.Total == 0 || s.Events.Arrived != s.Events.Placed+s.Events.Rejected {
		t.Errorf("inconsistent event aggregates: %+v", s.Events)
	}
	if s.Utilization.Mean < s.Utilization.Baseline || s.Utilization.Peak > 1 {
		t.Errorf("implausible utilisation aggregates: %+v", s.Utilization)
	}
}

func TestSimPolicyFlag(t *testing.T) {
	for flagVal, want := range map[string]string{"oracle": "Oracle", "random": "Random"} {
		var out bytes.Buffer
		err := run(context.Background(), []string{
			"-sim", "-machines", "30", "-duration", "0.5", "-policy", flagVal,
		}, &out)
		if err != nil {
			t.Fatalf("-policy %s: %v", flagVal, err)
		}
		if !strings.Contains(out.String(), "policy "+want) {
			t.Errorf("-policy %s report does not mention %q:\n%s", flagVal, want, out.String())
		}
	}
}

// TestSimSLOPolicyCLI drives -policy=slo end to end: the report carries
// the greedy comparison, the summary JSON carries the baseline block, and
// the emitted bytes are identical at -parallelism 1 and 8.
func TestSimSLOPolicyCLI(t *testing.T) {
	dir := t.TempDir()
	sum1 := filepath.Join(dir, "p1.json")
	sum8 := filepath.Join(dir, "p8.json")
	base := []string{
		"-sim", "-machines", "60", "-duration", "1", "-seed", "11",
		"-policy", "slo", "-slo-headroom", "0.1",
	}
	var out bytes.Buffer
	if err := run(context.Background(), append(base, "-summary-json", sum1, "-parallelism", "1"), &out); err != nil {
		t.Fatalf("parallelism 1: %v", err)
	}
	for _, want := range []string{"policy SLO", "saturation:", "vs greedy (SMiTe):"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q in:\n%s", want, out.String())
		}
	}
	out.Reset()
	if err := run(context.Background(), append(base, "-summary-json", sum8, "-parallelism", "8"), &out); err != nil {
		t.Fatalf("parallelism 8: %v", err)
	}
	a, err := os.ReadFile(sum1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(sum8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("SLO summary differs across parallelism:\n%s\nvs\n%s", a, b)
	}

	dec := json.NewDecoder(bytes.NewReader(a))
	dec.DisallowUnknownFields()
	var s cluster.Summary
	if err := dec.Decode(&s); err != nil {
		t.Fatalf("summary JSON does not decode strictly: %v", err)
	}
	if s.Policy != "SLO" {
		t.Errorf("summary policy %q, want SLO", s.Policy)
	}
	if s.Baseline == nil {
		t.Fatal("SLO summary carries no greedy baseline")
	}
	if s.Baseline.Policy != "SMiTe" {
		t.Errorf("baseline policy %q, want SMiTe", s.Baseline.Policy)
	}
	if s.Baseline.Placed == 0 {
		t.Error("baseline run placed nothing")
	}
	if s.Events.Placed < s.Baseline.Placed {
		t.Errorf("SLO placed %d, fewer than greedy %d", s.Events.Placed, s.Baseline.Placed)
	}
	if s.Saturation.Signal == "" {
		t.Error("summary carries no saturation signal")
	}
}

// TestSimIsolationCLI drives -policy=isolation over a heterogeneous
// machine mix with a pluggable allocation policy end to end: the report
// carries the isolation activity line and the no-enforcement comparison,
// the summary JSON carries the always-present isolation block with the
// ladder enabled, and the emitted bytes are identical at -parallelism 1
// and 8.
func TestSimIsolationCLI(t *testing.T) {
	dir := t.TempDir()
	sum1 := filepath.Join(dir, "p1.json")
	sum8 := filepath.Join(dir, "p8.json")
	base := []string{
		"-sim", "-machines", "60", "-duration", "1", "-seed", "11",
		"-policy", "isolation", "-machine-mix", "snb=3,ivb=2", "-alloc", "spread",
	}
	var out bytes.Buffer
	if err := run(context.Background(), append(base, "-summary-json", sum1, "-parallelism", "1"), &out); err != nil {
		t.Fatalf("parallelism 1: %v", err)
	}
	for _, want := range []string{"policy Isolation", "isolation:", "vs no-enforcement gate (SLO):"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q in:\n%s", want, out.String())
		}
	}
	out.Reset()
	if err := run(context.Background(), append(base, "-summary-json", sum8, "-parallelism", "8"), &out); err != nil {
		t.Fatalf("parallelism 8: %v", err)
	}
	a, err := os.ReadFile(sum1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(sum8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("isolation summary differs across parallelism:\n%s\nvs\n%s", a, b)
	}

	dec := json.NewDecoder(bytes.NewReader(a))
	dec.DisallowUnknownFields()
	var s cluster.Summary
	if err := dec.Decode(&s); err != nil {
		t.Fatalf("summary JSON does not decode strictly: %v", err)
	}
	if s.Policy != "Isolation" {
		t.Errorf("summary policy %q, want Isolation", s.Policy)
	}
	if !s.Isolation.Enabled || s.Isolation.Levels != 4 {
		t.Errorf("isolation block %+v, want enabled with the 4-level stock ladder", s.Isolation)
	}
	if s.Baseline == nil || s.Baseline.Policy != "SLO" {
		t.Fatalf("isolation summary baseline %+v, want the SLO gate", s.Baseline)
	}
	// A custom two-level ladder surfaces in the summary.
	out.Reset()
	if err := run(context.Background(), []string{
		"-sim", "-machines", "40", "-duration", "0.5", "-seed", "11",
		"-policy", "isolation", "-isol", "half:0.7:0.05", "-summary-json", "-",
	}, &out); err != nil {
		t.Fatalf("custom ladder: %v", err)
	}
	i := strings.Index(out.String(), "{")
	if i < 0 {
		t.Fatalf("no JSON in output:\n%s", out.String())
	}
	var cs cluster.Summary
	if err := json.Unmarshal([]byte(out.String()[i:]), &cs); err != nil {
		t.Fatal(err)
	}
	if cs.Isolation.Levels != 2 {
		t.Errorf("custom ladder levels %d, want 2", cs.Isolation.Levels)
	}
}

// TestSimClosedLoopCLI drives -policy=closedloop with injected drift end
// to end: the report carries the closed-loop activity line and the
// static-gate comparison, the summary JSON carries both blocks with the
// loop strictly beating the gate on violations, and the emitted bytes are
// identical at -parallelism 1 and 8.
func TestSimClosedLoopCLI(t *testing.T) {
	dir := t.TempDir()
	sum1 := filepath.Join(dir, "p1.json")
	sum8 := filepath.Join(dir, "p8.json")
	base := []string{
		"-sim", "-machines", "60", "-duration", "1.5", "-seed", "11",
		"-policy", "closedloop", "-drift-at", "0.5", "-drift-factor", "3",
	}
	var out bytes.Buffer
	if err := run(context.Background(), append(base, "-summary-json", sum1, "-parallelism", "1"), &out); err != nil {
		t.Fatalf("parallelism 1: %v", err)
	}
	for _, want := range []string{"policy ClosedLoop", "closed loop:", "vs static gate (SLO):"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q in:\n%s", want, out.String())
		}
	}
	out.Reset()
	if err := run(context.Background(), append(base, "-summary-json", sum8, "-parallelism", "8"), &out); err != nil {
		t.Fatalf("parallelism 8: %v", err)
	}
	a, err := os.ReadFile(sum1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(sum8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("closed-loop summary differs across parallelism:\n%s\nvs\n%s", a, b)
	}

	dec := json.NewDecoder(bytes.NewReader(a))
	dec.DisallowUnknownFields()
	var s cluster.Summary
	if err := dec.Decode(&s); err != nil {
		t.Fatalf("summary JSON does not decode strictly: %v", err)
	}
	if s.Policy != "ClosedLoop" {
		t.Errorf("summary policy %q, want ClosedLoop", s.Policy)
	}
	if s.ClosedLoop == nil {
		t.Fatal("summary carries no closed-loop block")
	}
	if s.ClosedLoop.Detections == 0 || s.ClosedLoop.Recharacterized == 0 {
		t.Errorf("closed loop never fired under 3× drift: %+v", s.ClosedLoop)
	}
	if s.Baseline == nil {
		t.Fatal("closed-loop summary carries no static-gate baseline")
	}
	if s.Baseline.Policy != "SLO" {
		t.Errorf("baseline policy %q, want SLO", s.Baseline.Policy)
	}
	if s.SLO.Violations >= s.Baseline.Violations {
		t.Errorf("closed loop %d violations, static gate %d — loop should win under drift",
			s.SLO.Violations, s.Baseline.Violations)
	}
}

// TestSimWarehouseScaleSLO is the acceptance-scale study: 10k machines
// under -policy=slo, reporting SLO-violation rate and utilization against
// the greedy colocator, bit-identical at -parallelism 1 and 8.
func TestSimWarehouseScaleSLO(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-machine study skipped in -short")
	}
	machines := "10000"
	arrival := "150000"
	if raceEnabled {
		machines = "2000"
		arrival = "30000"
	}
	dir := t.TempDir()
	sum1 := filepath.Join(dir, "p1.json")
	sum8 := filepath.Join(dir, "p8.json")
	base := []string{
		"-sim", "-machines", machines, "-duration", "0.5", "-arrival", arrival,
		"-seed", "17", "-policy", "slo",
	}
	var out bytes.Buffer
	if err := run(context.Background(), append(base, "-summary-json", sum1, "-parallelism", "1"), &out); err != nil {
		t.Fatalf("parallelism 1: %v", err)
	}
	out.Reset()
	if err := run(context.Background(), append(base, "-summary-json", sum8, "-parallelism", "8"), &out); err != nil {
		t.Fatalf("parallelism 8: %v", err)
	}
	a, _ := os.ReadFile(sum1)
	b, _ := os.ReadFile(sum8)
	if !bytes.Equal(a, b) {
		t.Fatal("10k-machine SLO summary differs across parallelism")
	}
	var s cluster.Summary
	if err := json.Unmarshal(a, &s); err != nil {
		t.Fatal(err)
	}
	if s.Baseline == nil {
		t.Fatal("study summary carries no greedy baseline")
	}
	if s.Events.Placed == 0 || s.Baseline.Placed == 0 {
		t.Fatalf("degenerate study: %+v", s.Events)
	}
}
