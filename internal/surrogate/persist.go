package surrogate

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/rulers"
)

// Set-file load failures are typed; match with errors.Is.
var (
	// ErrCorrupt wraps undecodable or structurally invalid set files.
	ErrCorrupt = errors.New("surrogate: corrupt set file")
	// ErrVersionSkew marks a set file from an incompatible format version.
	ErrVersionSkew = errors.New("surrogate: unsupported set file version")
	// ErrDimensionMismatch marks a set file fitted against a different
	// number of sharing dimensions than this build models.
	ErrDimensionMismatch = errors.New("surrogate: set file dimension count mismatch")
)

// setFileVersion is the on-disk format version of a saved Set.
const setFileVersion = 1

// setEnvelope is the on-disk form: version and dimension count guard the
// payload against skewed readers.
type setEnvelope struct {
	Version    int  `json:"version"`
	Dimensions int  `json:"dimensions"`
	Set        *Set `json:"set"`
}

// SaveSet writes the set as versioned JSON.
func SaveSet(w io.Writer, s *Set) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(setEnvelope{
		Version:    setFileVersion,
		Dimensions: int(rulers.NumDimensions),
		Set:        s,
	}); err != nil {
		return fmt.Errorf("surrogate: encoding set: %w", err)
	}
	return nil
}

// LoadSet reads a set saved by SaveSet, rejecting version or dimension
// skew with typed errors.
func LoadSet(r io.Reader) (*Set, error) {
	var env setEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if env.Version != setFileVersion {
		return nil, fmt.Errorf("%w: file has version %d, this build reads %d", ErrVersionSkew, env.Version, setFileVersion)
	}
	if env.Dimensions != int(rulers.NumDimensions) {
		return nil, fmt.Errorf("%w: file fitted over %d dimensions, this build models %d", ErrDimensionMismatch, env.Dimensions, rulers.NumDimensions)
	}
	if env.Set == nil {
		return nil, fmt.Errorf("%w: envelope carries no set", ErrCorrupt)
	}
	if env.Set.Models == nil {
		env.Set.Models = make(map[string]*Model)
	}
	return env.Set, nil
}

// WriteSetFile saves the set to path atomically (temp file + rename).
func WriteSetFile(path string, s *Set) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".surrogate-*.tmp")
	if err != nil {
		return fmt.Errorf("surrogate: staging set file: %w", err)
	}
	if err := SaveSet(tmp, s); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("surrogate: writing set file: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("surrogate: publishing set file: %w", err)
	}
	return nil
}

// ReadSetFile loads a set from path.
func ReadSetFile(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("surrogate: opening set file: %w", err)
	}
	defer f.Close()
	return LoadSet(f)
}
