package profile

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rulers"
	"repro/internal/workload"
)

func syntheticCurve() SensitivityCurve {
	return SensitivityCurve{
		App: "x", Dim: rulers.DimL2,
		Intensities:  []float64{0.25, 0.5, 0.75, 1.0},
		Degradations: []float64{0.10, 0.20, 0.30, 0.40},
	}
}

func TestCurveInterpolation(t *testing.T) {
	c := syntheticCurve()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0.25, 0.10}, {0.5, 0.20}, {0.375, 0.15}, {1.0, 0.40},
		{0.1, 0.10}, // clamped low
		{1.5, 0.40}, // clamped high
	}
	for _, cse := range cases {
		if got := c.At(cse.x); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", cse.x, got, cse.want)
		}
	}
}

func TestTwoPointOnLinearCurveIsExact(t *testing.T) {
	c := syntheticCurve() // perfectly linear
	if e := c.MaxTwoPointError(); e > 1e-12 {
		t.Errorf("two-point error %g on a linear curve", e)
	}
	tp := c.TwoPoint()
	if len(tp.Intensities) != 2 || tp.Intensities[0] != 0.25 || tp.Intensities[1] != 1.0 {
		t.Errorf("TwoPoint = %+v", tp)
	}
}

func TestTwoPointOnConvexCurve(t *testing.T) {
	c := SensitivityCurve{
		App: "x", Dim: rulers.DimL3,
		Intensities:  []float64{0.25, 0.5, 0.75, 1.0},
		Degradations: []float64{0.0, 0.0, 0.1, 0.4}, // convex: late ramp
	}
	if e := c.MaxTwoPointError(); e < 0.1 {
		t.Errorf("two-point error %g should expose the non-linearity", e)
	}
}

// Property: At is monotone for monotone curves and stays within the
// curve's range.
func TestCurveAtProperties(t *testing.T) {
	c := syntheticCurve()
	if err := quick.Check(func(aRaw, bRaw uint8) bool {
		a := float64(aRaw) / 255
		b := float64(bRaw) / 255
		if a > b {
			a, b = b, a
		}
		ya, yb := c.At(a), c.At(b)
		return ya <= yb+1e-12 && ya >= 0.10-1e-12 && yb <= 0.40+1e-12
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestCurveValidate(t *testing.T) {
	bad := SensitivityCurve{App: "x", Intensities: []float64{1, 0.5}, Degradations: []float64{0, 0}}
	if err := bad.Validate(); err == nil {
		t.Error("unsorted curve accepted")
	}
	short := SensitivityCurve{App: "x", Intensities: []float64{1}, Degradations: []float64{0}}
	if err := short.Validate(); err == nil {
		t.Error("single-point curve accepted")
	}
	mismatch := SensitivityCurve{App: "x", Intensities: []float64{0.5, 1}, Degradations: []float64{0}}
	if err := mismatch.Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestMeasureCurveOnSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in short mode")
	}
	p := NewProfiler(testConfig(), FastOptions())
	spec, _ := workload.ByName("458.sjeng")
	c, err := p.MeasureCurve(App(spec), rulers.DimL3, 3, SMT)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Intensities) != 3 {
		t.Errorf("got %d points", len(c.Intensities))
	}
	if c.Intensities[len(c.Intensities)-1] != 1.0 {
		t.Error("sweep must end at full intensity")
	}
}
