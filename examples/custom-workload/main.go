// Custom workload: SMiTe is not limited to the stock SPEC/CloudSuite
// models — any application expressible as an instruction-mix model can be
// characterized. This example defines a synthetic video-encoder-like
// workload, characterizes it on both Table I machines, and shows how its
// contention profile differs between SMT and CMP placements (on-core
// resources only matter for SMT).
//
// Run with:
//
//	go run ./examples/custom-workload
package main

import (
	"fmt"
	"log"

	"repro/smite"
)

func main() {
	// A hypothetical SIMD-heavy encoder: FP multiply/add dense, moderate
	// working set with strong temporal locality, very predictable
	// branches.
	encoder := &smite.Spec{
		Name: "custom.encoder",
		Mix: smite.Mix{
			FPMul: 0.26, FPAdd: 0.24, FPShuf: 0.08,
			IntAdd: 0.10, Load: 0.22, Store: 0.06, Branch: 0.03, Nop: 0.01,
		},
		MeanDepDist: 10, Dep2Prob: 0.3, IndepFrac: 0.5, PointerChaseFrac: 0.05,
		FootprintBytes: 768 << 10, Pattern: smite.PatternMixed, StrideBytes: 16, RandomFrac: 0.3,
		HotBytes: 24 << 10, HotFrac: 0.5,
		WarmBytes: 256 << 10, WarmFrac: 0.3,
		BranchTags: 256, BranchBias: 0.97,
		ICacheMissRate: 0.001, ITLBMissRate: 0.0005,
	}
	if err := encoder.Validate(); err != nil {
		log.Fatal(err)
	}

	for _, machine := range []smite.Machine{smite.IvyBridge, smite.SandyBridgeEN} {
		cfg := machine.Config()
		cfg.Cores = 2 // example runtime
		sys, err := smite.New(cfg, smite.WithOptions(smite.FastOptions()))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", cfg.Name)
		for _, placement := range []smite.Placement{smite.SMT, smite.CMP} {
			ch, err := sys.Characterize(encoder, placement)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%v placement (solo IPC %.2f):\n", placement, ch.SoloIPC)
			for d := smite.Dimension(0); d < smite.NumDimensions; d++ {
				bar := barOf(ch.Sen[d])
				fmt.Printf("  %-14s sen %6.2f%% %-12s con %6.2f%%\n", d, ch.Sen[d]*100, bar, ch.Con[d]*100)
			}
		}
		fmt.Println()
	}
	fmt.Println("under CMP placement the functional-unit and private-cache rows collapse")
	fmt.Println("to ~0: only the shared L3 and memory bandwidth remain contested.")
}

func barOf(v float64) string {
	n := int(v * 20)
	if n < 0 {
		n = 0
	}
	if n > 12 {
		n = 12
	}
	out := ""
	for i := 0; i < n; i++ {
		out += "#"
	}
	return out
}
