// Command clustersim runs the warehouse-scale scale-out study standalone:
// it builds the CloudSuite co-location degradation table on the simulated
// Sandy Bridge-EN fleet, then schedules batch work onto the latency
// servers' idle SMT contexts under the SMiTe, Oracle and Random policies
// and reports utilisation gains, QoS violations and the TCO impact.
//
// With -sim (or -replay) it instead runs the warehouse-scale
// discrete-event simulator: temporal job arrivals, machine churn and
// incremental contention-aware placement over a synthetic co-location
// world, with record/replay traces that reproduce a run bit for bit.
//
// Usage:
//
//	clustersim [-scale full|test] [-qos avg|tail] [-targets 0.95,0.90,0.85] [-servers 1000]
//	clustersim -sim [-machines 1000] [-duration 1] [-churn 0.02] [-policy smite]
//	           [-trace-out run.trace] [-summary-json -]
//	clustersim -replay run.trace [-parallelism 8]
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/qosd"
	"repro/internal/tco"
	"repro/internal/version"
	"repro/smite"
)

func main() {
	// The degradation table is hours of simulation at -scale full; Ctrl-C
	// cancels the in-flight cells instead of orphaning them.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintf(os.Stderr, "clustersim: %v\n", err)
		}
		os.Exit(2)
	}
}

// run parses args and executes the study, writing the report to w. Flag
// and validation errors return non-nil (the FlagSet prints usage).
func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("clustersim", flag.ContinueOnError)
	scaleFlag := fs.String("scale", "test", "experiment scale: full or test")
	qosFlag := fs.String("qos", "avg", "QoS definition: avg (average performance) or tail (90th-percentile latency)")
	targetsFlag := fs.String("targets", "0.95,0.90,0.85", "comma-separated QoS targets to detail (subset of 0.95,0.90,0.85)")
	serversFlag := fs.Int("servers", 0, "servers per latency application (0 = scale default)")
	serverFlag := fs.Bool("server", false, "route SMiTe predictions through an embedded smited daemon over HTTP instead of in-process")
	versionFlag := fs.Bool("version", false, "print the build version and exit")

	simFlag := fs.Bool("sim", false, "run the warehouse-scale discrete-event simulator instead of the static study")
	machinesFlag := fs.Int("machines", 1000, "sim: initial fleet size")
	durationFlag := fs.Float64("duration", 1, "sim: simulated horizon in time units")
	churnFlag := fs.Float64("churn", 0.02, "sim: machine churn rate (fraction of fleet per time unit)")
	arrivalFlag := fs.Float64("arrival", 0, "sim: job arrival rate per time unit (0 = 30 jobs per machine)")
	policyFlag := fs.String("policy", "smite", "sim: placement policy (smite, oracle, random, slo, closedloop or isolation)")
	targetFlag := fs.Float64("target", 0.92, "sim: QoS floor placements must respect, in (0,1]")
	shardsFlag := fs.Int("shards", 0, "sim: scheduling cells to split the fleet into (0 = default)")
	parFlag := fs.Int("parallelism", 0, "sim: worker goroutines for shard fan-out (0 = GOMAXPROCS); results are identical at any value")
	seedFlag := fs.Uint64("seed", 1, "sim: workload and synthetic-world seed")
	traceOutFlag := fs.String("trace-out", "", "sim: record the exogenous event trace to this file")
	replayFlag := fs.String("replay", "", "replay a recorded trace (implies -sim; config comes from the trace header)")
	summaryFlag := fs.String("summary-json", "", "sim: write the machine-readable run summary to this file (- for stdout)")
	sloClassesFlag := fs.String("slo-classes", "critical:20ms:0.95,standard:60ms:0.95,sheddable:150ms:0.90",
		"sim: SLO classes for -policy=slo as name:budget[:percentile],... (budgets are Go durations)")
	sloHeadroomFlag := fs.Float64("slo-headroom", 0.1, "sim: admission headroom in [0,1); budgets shrink to budget*(1-headroom) for admission")
	sloMuFlag := fs.Float64("slo-mu", 1000, "sim: solo per-thread service rate (req/s) for the SLO classes' M/M/1 model")
	sloLambdaFlag := fs.Float64("slo-lambda", 600, "sim: arrival rate (req/s) for the SLO classes' M/M/1 model")
	driftAtFlag := fs.Float64("drift-at", 0, "sim: simulated time the measured degradation surface shifts (with -drift-factor)")
	driftFactorFlag := fs.Float64("drift-factor", 0, "sim: factor the measured degradations scale by at -drift-at (0 = no drift)")
	machineMixFlag := fs.String("machine-mix", "", "sim: heterogeneous fleet as gen=weight,... over named machine generations (snb, ivb, power7, smt4, biglittle); empty = homogeneous")
	isolFlag := fs.String("isol", "", "sim: isolation ladder for -policy=isolation as name:degscale:tax,... above the implicit off level (empty = stock ladder)")
	allocFlag := fs.String("alloc", "", "sim: thread-to-core allocation policy scoring candidate contexts (bestfit, firstfit, spread, minload or mindeg; empty = bestfit)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *versionFlag {
		version.Fprint(w, "clustersim")
		return nil
	}

	if *simFlag || *replayFlag != "" {
		return runClusterSim(ctx, simOptions{
			machines: *machinesFlag, duration: *durationFlag, churn: *churnFlag,
			arrival: *arrivalFlag, policy: *policyFlag, target: *targetFlag,
			shards: *shardsFlag, parallelism: *parFlag, seed: *seedFlag,
			traceOut: *traceOutFlag, replay: *replayFlag, summaryJSON: *summaryFlag,
			qos:        *qosFlag,
			sloClasses: *sloClassesFlag, sloHeadroom: *sloHeadroomFlag,
			sloMu: *sloMuFlag, sloLambda: *sloLambdaFlag,
			driftAt: *driftAtFlag, driftFactor: *driftFactorFlag,
			machineMix: *machineMixFlag, isolSpec: *isolFlag, alloc: *allocFlag,
		}, w)
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "full":
		scale = experiments.FullScale()
	case "test":
		scale = experiments.TestScale()
	default:
		fs.Usage()
		return fmt.Errorf("unknown scale %q", *scaleFlag)
	}
	if *serversFlag > 0 {
		scale.ServersPerApp = *serversFlag
	}

	var targets []float64
	for _, t := range strings.Split(*targetsFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
		if err != nil || v <= 0 || v > 1 {
			fs.Usage()
			return fmt.Errorf("bad target %q", t)
		}
		targets = append(targets, v)
	}

	if *qosFlag != "avg" && *qosFlag != "tail" {
		fs.Usage()
		return fmt.Errorf("unknown qos %q", *qosFlag)
	}

	kind := cluster.QoSAvg
	if *qosFlag == "tail" {
		kind = cluster.QoSTail
	}

	lab := experiments.NewLab(scale)
	fmt.Fprintln(w, "building the co-location degradation table (this measures every latency×batch×instances cell)...")
	var res experiments.ScaleOutResult
	var err error
	if *serverFlag {
		res, err = scaleOutViaDaemon(ctx, lab, kind, w)
	} else {
		res, err = lab.ScaleOutStudyContext(ctx, kind, nil)
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(w, res.String())

	// Per-target policy detail.
	for _, target := range res.Targets {
		if !contains(targets, target) {
			continue
		}
		fmt.Fprintf(w, "target %.0f%%:\n", target*100)
		for _, pol := range []cluster.PolicyKind{cluster.PolicySMiTe, cluster.PolicyOracle, cluster.PolicyRandom} {
			r := res.Cells[target][pol]
			fmt.Fprintf(w, "  %-7s util %.1f%% -> %.1f%% (gain %.2f%%), mean instances %.2f, violations %.2f%% of co-located (worst %.2f%%)\n",
				pol, r.BaselineUtilization*100, r.Utilization*100, r.UtilizationGain*100,
				r.MeanInstances, r.ViolationFrac*100, r.ViolationMax*100)
		}
	}

	params := tco.Google2014()
	fmt.Fprintf(w, "\nTCO model: $%.0f/server, %.0fW at PUE %.2f, $%.2f/kWh, %g-year horizon => $%.0f/server/year\n",
		params.ServerCapex, params.ServerPowerWatts, params.PUE, params.ElectricityPerKWh,
		params.HorizonYears, params.PerServerPerYear())
	return nil
}

func contains(xs []float64, v float64) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// daemonPredictor satisfies cluster.Predictor from a map of degradations
// prefetched through a qosd daemon's /v1/batch endpoint.
type daemonPredictor struct {
	degs map[string]float64
}

func dpKey(lat, batch string, n int) string { return fmt.Sprintf("%s|%s|%d", lat, batch, n) }

func (d *daemonPredictor) Predict(lat, batch string, n int) (cluster.Prediction, error) {
	deg, ok := d.degs[dpKey(lat, batch, n)]
	if !ok {
		return cluster.Prediction{}, fmt.Errorf("clustersim: daemon served no prediction for %s|%s|%d", lat, batch, n)
	}
	return cluster.Prediction{Deg: deg, Tier: "daemon"}, nil
}

// scaleOutViaDaemon reruns the scale-out study with the SMiTe policy's
// predictions served by a live smited daemon instead of in-process calls:
// an embedded qosd server comes up on an ephemeral port, the study's
// profiles travel to it in the persisted-profile wire format, every
// (latency, batch, instances) cell is scored through POST /v1/batch, and
// the cluster study consumes those served numbers. Because the daemon
// evaluates the same model over JSON-round-tripped (hence bit-exact)
// float64 profiles, the decisions are bit-identical to the in-process
// path.
func scaleOutViaDaemon(ctx context.Context, lab *experiments.Lab, qos cluster.QoSKind, w io.Writer) (experiments.ScaleOutResult, error) {
	sa, err := lab.ServingArtifactsContext(ctx)
	if err != nil {
		return experiments.ScaleOutResult{}, err
	}

	reg := qosd.NewRegistry()
	srv := qosd.NewServer(reg, qosd.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return experiments.ScaleOutResult{}, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	// The model reaches the registry through its persisted form, the same
	// bytes `smited -model` would read from disk.
	var buf bytes.Buffer
	if err := smite.SaveModel(&buf, smite.NewModel(sa.Model.Coef, sa.Model.Intercept)); err != nil {
		return experiments.ScaleOutResult{}, err
	}
	if err := reg.LoadModel(&buf); err != nil {
		return experiments.ScaleOutResult{}, err
	}

	// Profiles go over the wire: the batch applications' contentiousness
	// profiles under their own names, and each latency application's
	// partial-occupancy sensitivity profiles under the lat#n convention.
	c := qosd.NewClient("http://"+ln.Addr().String(), nil)
	var chars []smite.Characterization
	for _, b := range sa.BatchApps {
		chars = append(chars, sa.Chars[b])
	}
	for _, lat := range sa.LatApps {
		for n := 1; n <= sa.MaxInstances; n++ {
			ch := sa.SenByCount[lat][n-1]
			ch.App = qosd.PartialProfileName(lat, n)
			chars = append(chars, ch)
		}
	}
	if _, err := c.UploadProfiles(ctx, chars); err != nil {
		return experiments.ScaleOutResult{}, err
	}

	// Prefetch the full decision surface, one batch request per
	// (latency app, instance count).
	dp := &daemonPredictor{degs: make(map[string]float64)}
	for _, lat := range sa.LatApps {
		for n := 1; n <= sa.MaxInstances; n++ {
			cands := make([]qosd.BatchCandidate, len(sa.BatchApps))
			for i, b := range sa.BatchApps {
				cands[i] = qosd.BatchCandidate{Aggressor: b, Instances: n}
			}
			resp, err := c.Batch(ctx, qosd.BatchRequest{
				Victim:     qosd.PartialProfileName(lat, n),
				Threads:    sa.Threads,
				Candidates: cands,
			})
			if err != nil {
				return experiments.ScaleOutResult{}, err
			}
			for _, r := range resp.Results {
				dp.degs[dpKey(lat, r.Aggressor, n)] = r.Degradation
			}
		}
	}
	fmt.Fprintf(w, "SMiTe predictions served by embedded smited at %s (%d profiles uploaded, %d cells fetched)\n",
		ln.Addr(), len(chars), len(dp.degs))

	res, err := lab.ScaleOutStudyContext(ctx, qos, dp)
	if shutdownErr := hs.Shutdown(context.Background()); err == nil && shutdownErr != nil {
		err = shutdownErr
	}
	return res, err
}
