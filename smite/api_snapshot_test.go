package smite

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update", false, "rewrite the public-API golden snapshot")

const apiGoldenPath = "testdata/api.golden"

// TestPublicAPISnapshot pins the package's exported surface: every
// exported function, method, type, constant and variable signature is
// rendered to one line and compared against a committed golden file.
// An unintentional break (removed symbol, changed signature) fails here
// before any caller notices; an intentional change is recorded by
// rerunning with -update and reviewing the diff.
func TestPublicAPISnapshot(t *testing.T) {
	got := strings.Join(exportedSurface(t, "."), "\n") + "\n"

	if *updateAPI {
		if err := os.MkdirAll(filepath.Dir(apiGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d symbols)", apiGoldenPath, strings.Count(got, "\n"))
		return
	}

	want, err := os.ReadFile(apiGoldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("public API surface changed; review the diff and rerun with -update if intended:\n%s",
			diffLines(string(want), got))
	}
}

// exportedSurface parses the package sources (tests excluded) and renders
// each exported declaration as one canonical line, sorted.
func exportedSurface(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				lines = append(lines, renderDecl(t, fset, decl)...)
			}
		}
	}
	sort.Strings(lines)
	return lines
}

func renderDecl(t *testing.T, fset *token.FileSet, decl ast.Decl) []string {
	t.Helper()
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		if d.Recv != nil && !exportedRecv(d.Recv) {
			return nil
		}
		stripped := *d
		stripped.Body = nil
		stripped.Doc = nil
		return []string{printNode(t, fset, &stripped)}
	case *ast.GenDecl:
		var lines []string
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if !sp.Name.IsExported() {
					continue
				}
				lines = append(lines, "type "+sp.Name.Name+typeSummary(t, fset, sp))
			case *ast.ValueSpec:
				kind := "var"
				if d.Tok == token.CONST {
					kind = "const"
				}
				for _, name := range sp.Names {
					if name.IsExported() {
						lines = append(lines, kind+" "+name.Name)
					}
				}
			}
		}
		return lines
	}
	return nil
}

// exportedRecv reports whether a method receiver's base type is exported.
func exportedRecv(recv *ast.FieldList) bool {
	typ := recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if id, ok := typ.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

// typeSummary renders a type's shape: exported struct fields and
// interface methods are part of the API; other type kinds just record
// the underlying expression (aliases included).
func typeSummary(t *testing.T, fset *token.FileSet, sp *ast.TypeSpec) string {
	switch typ := sp.Type.(type) {
	case *ast.StructType:
		var fields []string
		for _, f := range typ.Fields.List {
			for _, name := range f.Names {
				if name.IsExported() {
					fields = append(fields, name.Name+" "+printNode(t, fset, f.Type))
				}
			}
		}
		sort.Strings(fields)
		return " struct{" + strings.Join(fields, "; ") + "}"
	case *ast.InterfaceType:
		var methods []string
		for _, m := range typ.Methods.List {
			for _, name := range m.Names {
				if name.IsExported() {
					methods = append(methods, name.Name+printNode(t, fset, m.Type))
				}
			}
		}
		sort.Strings(methods)
		return " interface{" + strings.Join(methods, "; ") + "}"
	default:
		eq := " = "
		if sp.Assign == token.NoPos {
			eq = " "
		}
		return eq + printNode(t, fset, sp.Type)
	}
}

func printNode(t *testing.T, fset *token.FileSet, node any) string {
	t.Helper()
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, node); err != nil {
		t.Fatal(err)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}

// diffLines is a minimal line diff: lines only in want are prefixed "-",
// lines only in got "+".
func diffLines(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !gotSet[l] {
			fmt.Fprintf(&b, "- %s\n", l)
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !wantSet[l] {
			fmt.Fprintf(&b, "+ %s\n", l)
		}
	}
	if b.Len() == 0 {
		return "(ordering-only change)"
	}
	return b.String()
}
