package cluster

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	clworkload "repro/internal/cluster/workload"
)

// synthSimConfig assembles a runnable SimConfig on a synthetic world: the
// surrogate tier answers predictions first, the measured table is the
// fallback, and the QoS surface is precomputed through the Predictor seam.
func synthSimConfig(tb testing.TB, machines int, horizon float64, seed uint64) SimConfig {
	tb.Helper()
	const nLat, nBatch, maxInst = 3, 4, 6
	set, tbl, err := SyntheticWorld(nLat, nBatch, maxInst, seed)
	if err != nil {
		tb.Fatal(err)
	}
	pred := NewTieredPredictor(
		&SurrogatePredictor{Set: set, Capacity: maxInst},
		&TablePredictor{Table: tbl},
	)
	pt, err := BuildPredTable(context.Background(), tbl, nil, QoSAvg, pred, 1)
	if err != nil {
		tb.Fatal(err)
	}
	return SimConfig{
		Workload: clworkload.Config{
			Machines: machines, Horizon: horizon,
			Lats: nLat, Batches: nBatch, Seed: seed,
			ArrivalRate:  float64(machines) * 30,
			MeanDuration: 0.05,
			Diurnal:      0.4,
			BurstProb:    0.1, BurstFactor: 2.5,
			Drift: 0.2,
			Churn: 0.02,
		},
		Shards:            8,
		Policy:            PolicySMiTe,
		Target:            0.92,
		ThreadsPerServer:  6,
		ContextsPerServer: 12,
		Table:             pt,
	}
}

// saveFailureTrace records the failing run's trace under CLUSTER_TRACE_DIR
// (CI uploads the directory as an artifact) so the exact event stream that
// broke a law can be replayed locally.
func saveFailureTrace(tb testing.TB, cfg SimConfig, shards [][]clworkload.Event) {
	tb.Helper()
	dir := os.Getenv("CLUSTER_TRACE_DIR")
	if dir == "" || !tb.Failed() {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		tb.Logf("saving failure trace: %v", err)
		return
	}
	name := filepath.Join(dir, fmt.Sprintf("%s.trace", filepath.Base(tb.Name())))
	f, err := os.Create(name)
	if err != nil {
		tb.Logf("saving failure trace: %v", err)
		return
	}
	defer f.Close()
	if err := WriteTrace(f, cfg, shards); err != nil {
		tb.Logf("saving failure trace: %v", err)
		return
	}
	tb.Logf("failure trace saved to %s", name)
}

func TestSimSmoke(t *testing.T) {
	cfg := synthSimConfig(t, 60, 2, 7)
	events, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer saveFailureTrace(t, cfg, events)
	res, err := RunSim(context.Background(), cfg, events, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived == 0 || res.Arrived != res.Placed+res.Rejected {
		t.Errorf("job accounting broken: arrived %d, placed %d, rejected %d", res.Arrived, res.Placed, res.Rejected)
	}
	if res.Departed+res.Evicted > res.Placed {
		t.Errorf("more departures (%d) + evictions (%d) than placements (%d)", res.Departed, res.Evicted, res.Placed)
	}
	if res.Events < res.Arrived+res.Departed {
		t.Errorf("event count %d below arrivals %d + departures %d", res.Events, res.Arrived, res.Departed)
	}
	if res.MachinesStart != 60 {
		t.Errorf("initial fleet %d, want 60", res.MachinesStart)
	}
	if got := res.MachinesStart + res.MachineUps - res.MachineDowns; got != res.MachinesEnd {
		t.Errorf("fleet churn arithmetic: start %d + ups %d − downs %d != end %d",
			res.MachinesStart, res.MachineUps, res.MachineDowns, res.MachinesEnd)
	}
	if res.MeanUtilization <= res.BaselineUtilization || res.MeanUtilization > 1 {
		t.Errorf("mean utilisation %g outside (baseline %g, 1]", res.MeanUtilization, res.BaselineUtilization)
	}
	if res.PeakUtilization < res.MeanUtilization || res.PeakUtilization > 1 {
		t.Errorf("peak utilisation %g inconsistent with mean %g", res.PeakUtilization, res.MeanUtilization)
	}
	if len(res.Log) != res.Arrived {
		t.Errorf("placement log has %d entries for %d arrivals", len(res.Log), res.Arrived)
	}
	for i := 1; i < len(res.Log); i++ {
		a, b := res.Log[i-1], res.Log[i]
		if a.At > b.At || (a.At == b.At && a.Shard > b.Shard) {
			t.Fatalf("log out of (At, Shard, Seq) order at %d", i)
		}
	}
}

// TestSimParallelismIndependence is the shard-fan-out law at package
// level (internal/simtest sweeps it over 20 seeds): the merged result is
// bit-identical at any worker count.
func TestSimParallelismIndependence(t *testing.T) {
	cfg := synthSimConfig(t, 48, 2, 11)
	events, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer saveFailureTrace(t, cfg, events)
	base, err := RunSim(context.Background(), cfg, events, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := RunSim(context.Background(), cfg, events, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d diverged from sequential run", workers)
		}
	}
}

// TestSimOracleNeverViolates: the Oracle policy admits on the same
// measured QoS the violation check scores with, so it can never place
// into a violating occupancy.
func TestSimOracleNeverViolates(t *testing.T) {
	cfg := synthSimConfig(t, 48, 2, 13)
	cfg.Policy = PolicyOracle
	events, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer saveFailureTrace(t, cfg, events)
	res, err := RunSim(context.Background(), cfg, events, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("Oracle produced %d violations", res.Violations)
	}
}

// TestSimPolicySpread: Random placement must violate more often than
// SMiTe on the same event stream, and SMiTe must track Oracle's
// utilisation — the fleet-level shape of the paper's Figures 14/15.
func TestSimPolicySpread(t *testing.T) {
	cfg := synthSimConfig(t, 80, 3, 17)
	events, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer saveFailureTrace(t, cfg, events)
	byPolicy := map[PolicyKind]SimResult{}
	for _, pol := range []PolicyKind{PolicySMiTe, PolicyOracle, PolicyRandom} {
		c := cfg
		c.Policy = pol
		res, err := RunSim(context.Background(), c, events, 4)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		byPolicy[pol] = res
	}
	if sm, rd := byPolicy[PolicySMiTe], byPolicy[PolicyRandom]; sm.ViolationFrac >= rd.ViolationFrac {
		t.Errorf("SMiTe violation fraction %g not below Random's %g", sm.ViolationFrac, rd.ViolationFrac)
	}
	sm, or := byPolicy[PolicySMiTe], byPolicy[PolicyOracle]
	if sm.MeanUtilization < 0.9*or.MeanUtilization {
		t.Errorf("SMiTe utilisation %g lags Oracle's %g by more than 10%%", sm.MeanUtilization, or.MeanUtilization)
	}
}

func TestSimCancellation(t *testing.T) {
	cfg := synthSimConfig(t, 200, 50, 19)
	events, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSim(ctx, cfg, events, 2); err == nil {
		t.Fatal("cancelled run reported success")
	}
}

// TestSimWarehouseScale is the headline acceptance run: 10k machines,
// ≥1M placement/churn events, predictions through the surrogate tier,
// seconds of wall-clock — and the recorded trace replays bit-identically
// at parallelism 1 and 8.
func TestSimWarehouseScale(t *testing.T) {
	if testing.Short() {
		t.Skip("warehouse-scale simulation in short mode")
	}
	cfg := synthSimConfig(t, 10_000, 1, 23)
	cfg.Workload.ArrivalRate = 600_000
	cfg.Workload.MeanDuration = 0.005
	cfg.Shards = 16
	if raceEnabled {
		// The race detector slows the event loop several-fold; keep the
		// structure (10k machines, churn, drift) but an eighth of the load.
		cfg.Workload.ArrivalRate = 75_000
	}
	events, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer saveFailureTrace(t, cfg, events)

	start := time.Now()
	res, err := RunSim(context.Background(), cfg, events, 0)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	t.Logf("10k machines: %d events in %v (%.0f events/sec), util %.1f%%→%.1f%%, violations %.2f%%",
		res.Events, elapsed, float64(res.Events)/elapsed.Seconds(),
		res.BaselineUtilization*100, res.MeanUtilization*100, res.ViolationFrac*100)
	if !raceEnabled {
		if res.Events < 1_000_000 {
			t.Errorf("only %d events simulated, want >= 1M", res.Events)
		}
		if elapsed > 30*time.Second {
			t.Errorf("run took %v, want under 30s", elapsed)
		}
	}

	// Record → replay → the placement log and every aggregate must match
	// bit for bit, at sequential and at 8-way parallel replay.
	var buf bytes.Buffer
	if err := WriteTrace(&buf, cfg, events); err != nil {
		t.Fatal(err)
	}
	rcfg, revents, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		replay, err := RunSim(context.Background(), rcfg, revents, workers)
		if err != nil {
			t.Fatalf("replay workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(res.Log, replay.Log) {
			t.Fatalf("replay workers=%d: placement log diverged", workers)
		}
		if !reflect.DeepEqual(res, replay) {
			t.Fatalf("replay workers=%d: result diverged", workers)
		}
	}
}

// sloSimParams returns SLO parameters sized for the synthetic world's
// queueing shape: a 400 req/s solo drain puts the solo p95 around 7.5 ms,
// so the class budgets leave real but finite room for degradation.
func sloSimParams() *SLOSimParams {
	return &SLOSimParams{
		Classes: []SLOSimClass{
			{Name: "critical", Budget: 0.020, Percentile: 0.95, Mu: 1000, Lambda: 600},
			{Name: "standard", Budget: 0.060, Percentile: 0.95, Mu: 1000, Lambda: 600},
			{Name: "sheddable", Budget: 0.150, Percentile: 0.90, Mu: 1000, Lambda: 700},
		},
		Headroom: 0.1,
	}
}

// TestSimSLOPolicy runs the SLO admission policy end to end and pins its
// core guarantees: determinism across worker counts, and — the admission
// contract — every placement lands on a cell whose error-bound-inflated
// Eq. 6 tail estimate fits the class's effective budget.
func TestSimSLOPolicy(t *testing.T) {
	cfg := synthSimConfig(t, 60, 1.5, 19)
	cfg.Policy = PolicySLO
	cfg.SLO = sloSimParams()
	events, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer saveFailureTrace(t, cfg, events)

	seq, err := RunSim(context.Background(), cfg, events, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSim(context.Background(), cfg, events, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("SLO policy diverges across worker counts")
	}
	if seq.Placed == 0 {
		t.Fatal("SLO policy placed nothing; budgets are mis-sized for the synthetic world")
	}

	// The admission contract: no placement on an inadmissible cell.
	gate, err := buildSLOGate(cfg.Table, cfg.SLO.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range seq.Log {
		if p.Machine < 0 {
			continue
		}
		cell := cfg.Table.Cell(int(p.Lat), int(p.Batch), int(p.N))
		if !gate.admit[cell] {
			t.Fatalf("placement %+v landed on inadmissible cell %d (inflated tail over budget)", p, cell)
		}
	}

	// The comparison study: rerun the same streams under the greedy
	// QoS-floor policy, with violation accounting held identical (cfg.SLO
	// stays set). The SLO gate admits any co-location whose inflated tail
	// fits the budget — deliberately more permissive than the 0.92 QoS
	// floor — so it must place at least as much work, and its violations
	// stay bounded near the budget rather than exploding.
	greedy := cfg
	greedy.Policy = PolicySMiTe
	base, err := RunSim(context.Background(), greedy, events, 4)
	if err != nil {
		t.Fatal(err)
	}
	if base.Placed == 0 {
		t.Fatal("baseline placed nothing")
	}
	if seq.Placed < base.Placed {
		t.Errorf("SLO policy placed %d, fewer than greedy baseline %d", seq.Placed, base.Placed)
	}
	if seq.MeanUtilization < base.MeanUtilization {
		t.Errorf("SLO policy utilization %.4f below greedy baseline %.4f",
			seq.MeanUtilization, base.MeanUtilization)
	}
	if seq.ViolationFrac > 0.05 {
		t.Errorf("SLO policy violation frac %.4f; budgets should keep mispredictions rare", seq.ViolationFrac)
	}
}

// TestSimSLOValidation pins the configuration errors around the SLO gate.
func TestSimSLOValidation(t *testing.T) {
	cfg := synthSimConfig(t, 10, 1, 7)
	cfg.Policy = PolicySLO
	if err := cfg.Validate(); err == nil {
		t.Error("PolicySLO without SLO parameters accepted")
	}
	cfg.SLO = sloSimParams()
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid SLO config rejected: %v", err)
	}
	cfg.SLO.Classes[0].Budget = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative budget accepted")
	}
	cfg.SLO = sloSimParams()
	cfg.SLO.Headroom = 1
	if err := cfg.Validate(); err == nil {
		t.Error("headroom 1 accepted")
	}
	// Legacy tables without the degradation surface cannot be SLO-gated.
	cfg.SLO = sloSimParams()
	cfg.Table = &PredTable{
		LatencyApps:  cfg.Table.LatencyApps,
		BatchApps:    cfg.Table.BatchApps,
		MaxInstances: cfg.Table.MaxInstances,
		QoS:          cfg.Table.QoS,
		PredQoS:      cfg.Table.PredQoS,
		ActualQoS:    cfg.Table.ActualQoS,
	}
	if err := cfg.Validate(); err == nil {
		t.Error("SLO run over a table without degradations accepted")
	}
}

// TestSimDegenerateWorlds pins the empty-world edge: zero machines (or a
// zero arrival rate) must simulate to an empty placement log — no
// spurious records, no errors — at any worker count.
func TestSimDegenerateWorlds(t *testing.T) {
	for _, tc := range []struct {
		name     string
		machines int
	}{
		{"zero machines", 0},
		{"machines but no arrivals", 25},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := synthSimConfig(t, tc.machines, 1, 31)
			cfg.Workload.ArrivalRate = 0
			cfg.Workload.Churn = 0
			events, err := GenerateEvents(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, sh := range events {
				if len(sh) != 0 {
					t.Fatalf("degenerate world generated %d events in a shard", len(sh))
				}
			}
			for _, workers := range []int{1, 4} {
				res, err := RunSim(context.Background(), cfg, events, workers)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Log) != 0 || res.Events != 0 || res.Placed != 0 || res.Rejected != 0 {
					t.Fatalf("degenerate world produced a non-empty run: %+v", res)
				}
				if res.MachinesStart != tc.machines || res.MachinesEnd != tc.machines {
					t.Fatalf("fleet %d -> %d, want %d unchanged", res.MachinesStart, res.MachinesEnd, tc.machines)
				}
			}
		})
	}
}
