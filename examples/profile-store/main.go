// Profile store: the paper's deployment model (Section III-D) has every
// application characterized once and its profile kept by the cluster
// scheduler, which then makes placement decisions *offline* — no further
// profiling. This example characterizes a few applications, persists the
// profiles and the trained model as JSON, then reloads them in a fresh
// "scheduler process" and answers placement queries without touching the
// machine again.
//
// Run with:
//
//	go run ./examples/profile-store
//
// With -dir the store is also written to <dir>/profiles.json and
// <dir>/model.json — the files cmd/smited serves from:
//
//	go run ./examples/profile-store -dir /tmp/store
//	go run ./cmd/smited -profiles /tmp/store/profiles.json -model /tmp/store/model.json
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/smite"
)

func main() {
	dir := flag.String("dir", "", "also write profiles.json and model.json into this directory")
	flag.Parse()

	sys, err := smite.New(smite.IvyBridge.Config(), smite.WithOptions(smite.FastOptions()))
	if err != nil {
		log.Fatal(err)
	}

	// --- Profiling pass (runs on the machine, once per application) ---
	names := []string{"web-search", "456.hmmer", "470.lbm", "429.mcf"}
	var apps []*smite.Spec
	for _, n := range names {
		s, err := smite.WorkloadByName(n)
		if err != nil {
			log.Fatal(err)
		}
		apps = append(apps, s)
	}
	fmt.Println("profiling pass: characterizing", len(apps), "applications...")
	chars, err := sys.CharacterizeAll(apps, smite.SMT)
	if err != nil {
		log.Fatal(err)
	}
	train, _ := smite.TrainTestSplit()
	model, _, err := sys.TrainFromSets(train[:8], smite.SMT)
	if err != nil {
		log.Fatal(err)
	}

	// Persist everything the scheduler will ever need.
	var profileDB, modelDB bytes.Buffer
	if err := smite.SaveProfiles(&profileDB, chars); err != nil {
		log.Fatal(err)
	}
	if err := smite.SaveModel(&modelDB, model); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %d profiles (%d bytes) and the model (%d bytes)\n\n",
		len(chars), profileDB.Len(), modelDB.Len())

	if *dir != "" {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			log.Fatal(err)
		}
		pPath := filepath.Join(*dir, "profiles.json")
		mPath := filepath.Join(*dir, "model.json")
		if err := os.WriteFile(pPath, profileDB.Bytes(), 0o644); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(mPath, modelDB.Bytes(), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s and %s (serve them with cmd/smited)\n\n", pPath, mPath)
	}

	// --- Scheduler process (no machine access, pure lookups) ---
	loadedChars, err := smite.LoadProfiles(&profileDB)
	if err != nil {
		log.Fatal(err)
	}
	loadedModel, err := smite.LoadModel(&modelDB)
	if err != nil {
		log.Fatal(err)
	}
	byName := make(map[string]smite.Characterization)
	for _, c := range loadedChars {
		byName[c.App] = c
	}

	service := byName["web-search"]
	fmt.Println("scheduler decisions for web-search (QoS target 95%):")
	for _, cand := range []string{"456.hmmer", "470.lbm", "429.mcf"} {
		deg := loadedModel.PredictPair(service, byName[cand])
		verdict := "reject"
		if loadedModel.SafeColocation(service, byName[cand], 0.95) {
			verdict = "place"
		}
		fmt.Printf("  %-12s predicted %6.2f%% degradation -> %s\n", cand, deg*100, verdict)
	}
}
