package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/profile"
	"repro/internal/sched"
	"repro/internal/sim/isa"
	"repro/internal/stats"
	"repro/internal/workload"
)

// PortUtilResult holds the aggregated per-port utilisation samples across
// all SPEC co-location pairs, behind Figure 3 (ports 0, 1, 5) and Figure 5
// (memory ports 2, 3, 4).
type PortUtilResult struct {
	Pairs int
	// Utils[p] holds one aggregated-utilisation sample per co-located
	// pair: the two contexts' dispatches to port p divided by window
	// cycles.
	Utils [isa.NumPorts][]float64
}

// Fig3And5PortUtilization co-locates all (truncated) SPEC pairs on the
// Ivy Bridge machine and collects the aggregated utilisation of every
// execution port from the simulated PMUs.
func (l *Lab) Fig3And5PortUtilization() (PortUtilResult, error) {
	return l.Fig3And5PortUtilizationContext(context.Background())
}

// Fig3And5PortUtilizationContext is Fig3And5PortUtilization with
// cooperative cancellation; the per-pair co-locations fan out on the
// internal/sched worker pool.
func (l *Lab) Fig3And5PortUtilizationContext(ctx context.Context) (PortUtilResult, error) {
	set := workload.SPECCPU2006()
	if l.Scale.MaxPairApps > 0 && len(set) > l.Scale.MaxPairApps {
		set = set[:l.Scale.MaxPairApps]
	}
	type pair struct{ a, b *workload.Spec }
	var pairs []pair
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			pairs = append(pairs, pair{set[i], set[j]})
		}
	}
	type sample [isa.NumPorts]float64
	samples := make([]sample, len(pairs))
	err := sched.Map(ctx, len(pairs), l.workers(), func(ctx context.Context, i int) error {
		pr := pairs[i]
		res, err := profile.ColocateContext(ctx, l.IVB, profile.App(pr.a), profile.App(pr.b), profile.SMT, l.Scale.Options)
		if err != nil {
			return err
		}
		a, b := res.AppCounters[0], res.PartnerCounters[0]
		for p := isa.Port(0); p < isa.NumPorts; p++ {
			samples[i][p] = a.PortUtilization(p) + b.PortUtilization(p)
		}
		return nil
	})
	if err != nil {
		return PortUtilResult{}, err
	}
	out := PortUtilResult{Pairs: len(pairs)}
	for _, s := range samples {
		for p := 0; p < isa.NumPorts; p++ {
			out.Utils[p] = append(out.Utils[p], s[p])
		}
	}
	return out, nil
}

// CDF returns the empirical CDF of one port's aggregated utilisation.
func (r PortUtilResult) CDF(p isa.Port) *stats.ECDF { return stats.NewECDF(r.Utils[p]) }

// Median returns the median aggregated utilisation of a port.
func (r PortUtilResult) Median(p isa.Port) float64 {
	return stats.Percentile(r.Utils[p], 0.5)
}

// String renders decile tables for the functional-unit ports (Figure 3)
// and memory ports (Figure 5).
func (r PortUtilResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figures 3 & 5: aggregated port utilisation CDFs over %d SPEC co-location pairs\n", r.Pairs)
	render := func(title string, ports []isa.Port) {
		b.WriteString(title + "\n")
		header := []string{"percentile"}
		for _, p := range ports {
			header = append(header, fmt.Sprintf("port %d", p))
		}
		t := newTable(header...)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
			row := []string{fmt.Sprintf("p%.0f", q*100)}
			for _, p := range ports {
				row = append(row, f3(stats.Percentile(r.Utils[p], q)))
			}
			t.row(row...)
		}
		b.WriteString(t.String())
	}
	render("Figure 3 (functional-unit ports):", []isa.Port{0, 1, 5})
	render("Figure 5 (memory ports):", []isa.Port{2, 3, 4})
	fmt.Fprintf(&b, "store port 4 median %.3f vs load ports median %.3f/%.3f (paper: port 4 heavily underutilised)\n",
		r.Median(4), r.Median(2), r.Median(3))
	return b.String()
}
