package simtest

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/cluster"
	clworkload "repro/internal/cluster/workload"
)

// clusterSimConfig builds one randomized discrete-event cluster run on a
// synthetic co-location world: surrogate tier first, measured table as
// fallback, QoS surface precomputed through the Predictor seam.
func clusterSimConfig(t *testing.T, seed uint64) cluster.SimConfig {
	t.Helper()
	const nLat, nBatch, maxInst = 3, 4, 6
	set, tbl, err := cluster.SyntheticWorld(nLat, nBatch, maxInst, seed)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	pred := cluster.NewTieredPredictor(
		&cluster.SurrogatePredictor{Set: set, Capacity: maxInst},
		&cluster.TablePredictor{Table: tbl},
	)
	pt, err := cluster.BuildPredTable(context.Background(), tbl, nil, cluster.QoSAvg, pred, 1)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	policies := []cluster.PolicyKind{cluster.PolicySMiTe, cluster.PolicyOracle, cluster.PolicyRandom}
	return cluster.SimConfig{
		Workload: clworkload.Config{
			Machines: 24 + int(seed%5)*8,
			Horizon:  1 + float64(seed%3)*0.5,
			Lats:     nLat, Batches: nBatch, Seed: seed,
			ArrivalRate:  500 + float64(seed%7)*100,
			MeanDuration: 0.05,
			Diurnal:      0.3,
			BurstProb:    0.1, BurstFactor: 2,
			Drift: 0.3,
			Churn: float64(seed%4) * 0.03,
		},
		Shards:            4 + int(seed%2)*4,
		Policy:            policies[seed%3],
		Target:            0.9 + float64(seed%3)*0.02,
		ThreadsPerServer:  6,
		ContextsPerServer: 12,
		Table:             pt,
	}
}

// TestClusterReplayDeterminism is the cluster simulator's replay law: for
// every seed, recording a run's trace and replaying it must reproduce the
// placement log bit for bit — at sequential replay and at 8-way shard
// fan-out, which must themselves agree exactly.
func TestClusterReplayDeterminism(t *testing.T) {
	for seed := uint64(0); seed < numSeeds; seed++ {
		cfg := clusterSimConfig(t, seed)
		events, err := cluster.GenerateEvents(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		orig, err := cluster.RunSim(context.Background(), cfg, events, 1)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		var trace bytes.Buffer
		if err := cluster.WriteTrace(&trace, cfg, events); err != nil {
			t.Fatalf("seed %d: record: %v", seed, err)
		}
		rcfg, revents, err := cluster.ReadTrace(bytes.NewReader(trace.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: read: %v", seed, err)
		}
		for _, workers := range []int{1, 8} {
			replay, err := cluster.RunSim(context.Background(), rcfg, revents, workers)
			if err != nil {
				t.Fatalf("seed %d: replay workers=%d: %v", seed, workers, err)
			}
			if !reflect.DeepEqual(orig.Log, replay.Log) {
				t.Errorf("seed %d (policy %v, %d machines): replay at workers=%d diverged from recorded run",
					seed, cfg.Policy, cfg.Workload.Machines, workers)
			}
			if !reflect.DeepEqual(orig, replay) {
				t.Errorf("seed %d: replay aggregates at workers=%d differ from recorded run", seed, workers)
			}
		}
	}
}
