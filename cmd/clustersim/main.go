// Command clustersim runs the warehouse-scale scale-out study standalone:
// it builds the CloudSuite co-location degradation table on the simulated
// Sandy Bridge-EN fleet, then schedules batch work onto the latency
// servers' idle SMT contexts under the SMiTe, Oracle and Random policies
// and reports utilisation gains, QoS violations and the TCO impact.
//
// Usage:
//
//	clustersim [-scale full|test] [-qos avg|tail] [-targets 0.95,0.90,0.85] [-servers 1000]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/tco"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintf(os.Stderr, "clustersim: %v\n", err)
		}
		os.Exit(2)
	}
}

// run parses args and executes the study, writing the report to w. Flag
// and validation errors return non-nil (the FlagSet prints usage).
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("clustersim", flag.ContinueOnError)
	scaleFlag := fs.String("scale", "test", "experiment scale: full or test")
	qosFlag := fs.String("qos", "avg", "QoS definition: avg (average performance) or tail (90th-percentile latency)")
	targetsFlag := fs.String("targets", "0.95,0.90,0.85", "comma-separated QoS targets to detail (subset of 0.95,0.90,0.85)")
	serversFlag := fs.Int("servers", 0, "servers per latency application (0 = scale default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "full":
		scale = experiments.FullScale()
	case "test":
		scale = experiments.TestScale()
	default:
		fs.Usage()
		return fmt.Errorf("unknown scale %q", *scaleFlag)
	}
	if *serversFlag > 0 {
		scale.ServersPerApp = *serversFlag
	}

	var targets []float64
	for _, t := range strings.Split(*targetsFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
		if err != nil || v <= 0 || v > 1 {
			fs.Usage()
			return fmt.Errorf("bad target %q", t)
		}
		targets = append(targets, v)
	}

	if *qosFlag != "avg" && *qosFlag != "tail" {
		fs.Usage()
		return fmt.Errorf("unknown qos %q", *qosFlag)
	}

	lab := experiments.NewLab(scale)
	fmt.Fprintln(w, "building the co-location degradation table (this measures every latency×batch×instances cell)...")
	var res experiments.ScaleOutResult
	var err error
	if *qosFlag == "avg" {
		res, err = lab.Fig14And15AvgQoS()
	} else {
		res, err = lab.Fig16And17TailQoS()
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(w, res.String())

	// Per-target policy detail.
	for _, target := range res.Targets {
		if !contains(targets, target) {
			continue
		}
		fmt.Fprintf(w, "target %.0f%%:\n", target*100)
		for _, pol := range []cluster.PolicyKind{cluster.PolicySMiTe, cluster.PolicyOracle, cluster.PolicyRandom} {
			r := res.Cells[target][pol]
			fmt.Fprintf(w, "  %-7s util %.1f%% -> %.1f%% (gain %.2f%%), mean instances %.2f, violations %.2f%% of co-located (worst %.2f%%)\n",
				pol, r.BaselineUtilization*100, r.Utilization*100, r.UtilizationGain*100,
				r.MeanInstances, r.ViolationFrac*100, r.ViolationMax*100)
		}
	}

	params := tco.Google2014()
	fmt.Fprintf(w, "\nTCO model: $%.0f/server, %.0fW at PUE %.2f, $%.2f/kWh, %g-year horizon => $%.0f/server/year\n",
		params.ServerCapex, params.ServerPowerWatts, params.PUE, params.ElectricityPerKWh,
		params.HorizonYears, params.PerServerPerYear())
	return nil
}

func contains(xs []float64, v float64) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
