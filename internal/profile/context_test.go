package profile

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

func ctxTestSpecs(t *testing.T) []*workload.Spec {
	t.Helper()
	var specs []*workload.Spec
	for _, name := range []string{"444.namd", "429.mcf"} {
		s, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}
	return specs
}

// CharacterizeAll must return the exact same bits at every Parallelism —
// the scheduler's index-addressed reduction makes worker count a pure
// throughput knob.
func TestCharacterizeAllParallelismInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization runs in short mode")
	}
	specs := ctxTestSpecs(t)
	var baseline []Characterization
	for _, workers := range []int{1, 2, 3, 8} {
		opts := FastOptions()
		opts.Parallelism = workers
		p := NewProfiler(testConfig(), opts)
		got, err := p.CharacterizeAll(specs, SMT)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if baseline == nil {
			baseline = got
			continue
		}
		if !reflect.DeepEqual(baseline, got) {
			t.Errorf("workers=%d produced different characterizations:\nworkers=1: %+v\nworkers=%d: %+v", workers, baseline, workers, got)
		}
	}
}

// MeasurePairs must likewise be Parallelism-invariant, including the
// ordering of the returned slice.
func TestMeasurePairsParallelismInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("pair measurements run in short mode")
	}
	a, err := workload.ByName("456.hmmer")
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.ByName("470.lbm")
	if err != nil {
		t.Fatal(err)
	}
	specs := append(ctxTestSpecs(t), a, b)
	var baseline []PairMeasurement
	for _, workers := range []int{1, 4} {
		opts := FastOptions()
		opts.Parallelism = workers
		p := NewProfiler(testConfig(), opts)
		got, err := p.MeasurePairs(specs, specs, SMT)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if baseline == nil {
			baseline = got
			continue
		}
		if !reflect.DeepEqual(baseline, got) {
			t.Errorf("workers=%d produced different pair measurements", workers)
		}
	}
}

// A cancelled context aborts characterization promptly with ctx.Err(),
// even when the windows would take far longer than the deadline.
func TestCharacterizeContextCancels(t *testing.T) {
	opts := FastOptions()
	// Windows large enough that a full characterization takes seconds.
	opts.MeasureCycles = 50_000_000
	opts.WarmupCycles = 10_000_000
	p := NewProfiler(testConfig(), opts)
	specs := ctxTestSpecs(t)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := p.CharacterizeContext(ctx, specs[0], SMT)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; the engine is not honoring ctx mid-window", elapsed)
	}
}

// A pre-cancelled context runs nothing.
func TestCharacterizeAllPreCancelled(t *testing.T) {
	p := NewProfiler(testConfig(), FastOptions())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.CharacterizeAllContext(ctx, ctxTestSpecs(t), SMT); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if st := p.CacheStats(); st.Misses != 0 {
		t.Fatalf("pre-cancelled batch simulated %d runs", st.Misses)
	}
}

// Progress must count every cell of the batch exactly once and end at
// done == total.
func TestCharacterizeAllProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization runs in short mode")
	}
	specs := ctxTestSpecs(t)
	opts := FastOptions()
	opts.Parallelism = 2
	var mu sync.Mutex
	var calls int
	var finalDone, finalTotal int
	opts.Progress = func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if done > finalDone {
			finalDone, finalTotal = done, total
		}
	}
	p := NewProfiler(testConfig(), opts)
	if _, err := p.CharacterizeAll(specs, SMT); err != nil {
		t.Fatal(err)
	}
	nr := len(p.RulerSet())
	want := len(specs) + nr + len(specs)*nr
	mu.Lock()
	defer mu.Unlock()
	if calls != want {
		t.Errorf("Progress fired %d times, want %d (one per cell)", calls, want)
	}
	if finalDone != want || finalTotal != want {
		t.Errorf("final progress %d/%d, want %d/%d", finalDone, finalTotal, want, want)
	}
}
