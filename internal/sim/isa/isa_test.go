package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestStockConfigsValid(t *testing.T) {
	for _, cfg := range []Config{SandyBridgeEN(), IvyBridge()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s invalid: %v", cfg.Name, err)
		}
	}
}

func TestTable1Shapes(t *testing.T) {
	snb := SandyBridgeEN()
	if snb.Cores != 6 || snb.Contexts() != 12 {
		t.Errorf("SNB-EN: %d cores / %d contexts, want 6/12", snb.Cores, snb.Contexts())
	}
	if snb.FrequencyGHz != 1.9 {
		t.Errorf("SNB-EN frequency %g", snb.FrequencyGHz)
	}
	ivb := IvyBridge()
	if ivb.Cores != 4 || ivb.Contexts() != 8 {
		t.Errorf("IVB: %d cores / %d contexts, want 4/8", ivb.Cores, ivb.Contexts())
	}
	if ivb.L3.SizeBytes != 8<<20 {
		t.Errorf("IVB L3 = %d", ivb.L3.SizeBytes)
	}
}

// TestFigure1PortMap pins the paper's port-specific operation mapping.
func TestFigure1PortMap(t *testing.T) {
	cfg := IvyBridge()
	cases := []struct {
		kind UopKind
		want PortMask
	}{
		{FPMul, Mask(0)},
		{FPAdd, Mask(1)},
		{FPShuf, Mask(5)},
		{IntAdd, Mask(0, 1, 5)},
		{Load, Mask(2, 3)},
		{Store, Mask(4)},
		{Branch, Mask(5)},
	}
	for _, c := range cases {
		if got := cfg.PortMap[c.kind]; got != c.want {
			t.Errorf("%v ports = %v, want %v", c.kind, got, c.want)
		}
	}
}

func TestPortMaskOps(t *testing.T) {
	m := Mask(0, 1, 5)
	for _, p := range []Port{0, 1, 5} {
		if !m.Has(p) {
			t.Errorf("mask missing port %d", p)
		}
	}
	for _, p := range []Port{2, 3, 4} {
		if m.Has(p) {
			t.Errorf("mask contains port %d", p)
		}
	}
	if got := m.String(); got != "{0,1,5}" {
		t.Errorf("String = %q", got)
	}
	if ports := m.Ports(); len(ports) != 3 || ports[0] != 0 || ports[2] != 5 {
		t.Errorf("Ports = %v", ports)
	}
}

// Property: Mask/Ports round-trip.
func TestMaskRoundTrip(t *testing.T) {
	if err := quick.Check(func(bits uint8) bool {
		m := PortMask(bits & 0x3F)
		return Mask(m.Ports()...) == m
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestKindStrings(t *testing.T) {
	if FPMul.String() != "FP_MUL" || Branch.String() != "BRANCH" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(UopKind(200).String(), "200") {
		t.Error("unknown kind string")
	}
	if !Load.IsMem() || !Store.IsMem() || FPAdd.IsMem() {
		t.Error("IsMem wrong")
	}
}

func TestCacheParamsSets(t *testing.T) {
	p := CacheParams{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64}
	if p.Sets() != 64 {
		t.Errorf("sets = %d, want 64", p.Sets())
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		f    func(*Config)
	}{
		{"no cores", func(c *Config) { c.Cores = 0 }},
		{"9 contexts", func(c *Config) { c.ContextsPerCore = MaxContextsPerCore + 1 }},
		{"rob not pow2", func(c *Config) { c.ROBSize = 100 }},
		{"scan depth", func(c *Config) { c.IssueScanDepth = 0 }},
		{"scan > rob", func(c *Config) { c.IssueScanDepth = c.ROBSize + 1 }},
		{"no mshrs", func(c *Config) { c.MSHRsPerContext = 0 }},
		{"bad l1 sets", func(c *Config) { c.L1D.SizeBytes = 3000 }},
		{"zero mem interval", func(c *Config) { c.MemServiceInterval = 0 }},
		{"bad page", func(c *Config) { c.PageBytes = 3000 }},
		{"bad predictor", func(c *Config) { c.BranchPredictorEntries = 100 }},
		{"portless kind", func(c *Config) { c.PortMap[FPMul] = 0 }},
	}
	for _, m := range mutations {
		cfg := IvyBridge()
		m.f(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

func TestPower7LikeValid(t *testing.T) {
	cfg := Power7Like()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// The defining property: FP multiply and add share symmetric pipes, so
	// the Sandy Bridge FP_MUL/FP_ADD Ruler distinction collapses.
	if cfg.PortMap[FPMul] != cfg.PortMap[FPAdd] {
		t.Error("POWER7-like FPUs should be symmetric")
	}
	if cfg.PortMap[FPMul] == IvyBridge().PortMap[FPMul] {
		t.Error("POWER7-like port map should differ from Sandy Bridge's")
	}
}
