// Command smite is the command-line front end to the SMiTe methodology:
// list the stock application models, characterize an application with the
// Ruler suite, and predict (or actually measure) co-location degradations.
//
// Usage:
//
//	smite list
//	smite characterize -app 444.namd [-machine ivb|snb] [-placement smt|cmp] [-fast]
//	smite predict -victim web-search -aggressor 470.lbm [-fast]
//	smite measure -victim 444.namd -aggressor 429.mcf [-fast] [-timeline-out t.json]
//	smite version
//
// Every simulation subcommand accepts -trace-out to dump a Chrome trace of
// the run's internal stages; measure additionally accepts -timeline-out for
// a cycle-sampled contention timeline of the co-located pair. Both files
// load in chrome://tracing or Perfetto.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/obs/timeline"
	"repro/internal/obs/trace"
	"repro/internal/profile"
	"repro/internal/version"
	"repro/smite"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// Ctrl-C cancels in-flight simulation work instead of leaving a long
	// characterization running to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "list":
		err = list()
	case "characterize":
		err = characterize(ctx, os.Args[2:])
	case "predict":
		err = predict(ctx, os.Args[2:])
	case "measure":
		err = measure(ctx, os.Args[2:])
	case "version", "-version", "--version":
		printVersion(os.Stdout)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "smite: %v\n", err)
		os.Exit(1)
	}
}

func printVersion(w io.Writer) { version.Fprint(w, "smite") }

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  smite list
  smite characterize -app <name> [-machine ivb|snb] [-placement smt|cmp] [-fast]
  smite predict -victim <name> -aggressor <name> [-fast]
  smite measure -victim <name> -aggressor <name> [-fast] [-timeline-out <file>]
  smite version

simulation subcommands also accept -trace-out <file> (Chrome trace of the
run's stages; open in chrome://tracing)`)
}

func list() error {
	fmt.Println("SPEC CPU2006:")
	for _, s := range smite.SPECWorkloads() {
		fmt.Printf("  %-16s %s\n", s.Name, s.Suite)
	}
	fmt.Println("CloudSuite (latency-sensitive):")
	for _, s := range smite.CloudWorkloads() {
		fmt.Printf("  %-16s %d threads, %g QPS/thread\n", s.Name, s.ThreadCount(), s.ServiceRate)
	}
	return nil
}

func commonFlags(fs *flag.FlagSet) (machine *string, placement *string, fast *bool, traceOut *string) {
	machine = fs.String("machine", "ivb", "machine: ivb (i7-3770) or snb (Xeon E5-2420)")
	placement = fs.String("placement", "smt", "placement: smt or cmp")
	fast = fs.Bool("fast", false, "use reduced measurement windows")
	traceOut = fs.String("trace-out", "", "write a Chrome trace of the run's stages to this file")
	return
}

// traceTo attaches a span tracer to ctx when path is set. The returned
// finish renders the collected spans as Chrome-trace JSON to path; with no
// path it is a no-op and the run is completely untraced.
func traceTo(ctx context.Context, path string) (context.Context, func() error) {
	if path == "" {
		return ctx, func() error { return nil }
	}
	tr := trace.New()
	return trace.NewContext(ctx, tr), func() error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tr.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote trace to %s\n", path)
		return nil
	}
}

func machineOptions(machine string, fast bool) (smite.Machine, smite.Options, error) {
	opts := smite.DefaultOptions()
	if fast {
		opts = smite.FastOptions()
	}
	m := smite.IvyBridge
	if machine == "snb" {
		m = smite.SandyBridgeEN
	} else if machine != "ivb" {
		return m, opts, fmt.Errorf("unknown machine %q", machine)
	}
	return m, opts, nil
}

func newSystem(machine string, fast bool, extra ...smite.Option) (*smite.System, error) {
	m, opts, err := machineOptions(machine, fast)
	if err != nil {
		return nil, err
	}
	return smite.New(m.Config(), append([]smite.Option{smite.WithOptions(opts)}, extra...)...)
}

func parsePlacement(s string) (smite.Placement, error) {
	switch s {
	case "smt":
		return smite.SMT, nil
	case "cmp":
		return smite.CMP, nil
	}
	return smite.SMT, fmt.Errorf("unknown placement %q", s)
}

func characterize(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("characterize", flag.ExitOnError)
	app := fs.String("app", "", "application name")
	machine, placementS, fast, traceOut := commonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *app == "" {
		return fmt.Errorf("characterize: -app is required")
	}
	ctx, finishTrace := traceTo(ctx, *traceOut)
	spec, err := smite.WorkloadByName(*app)
	if err != nil {
		return err
	}
	sys, err := newSystem(*machine, *fast)
	if err != nil {
		return err
	}
	placement, err := parsePlacement(*placementS)
	if err != nil {
		return err
	}
	ch, err := sys.CharacterizeContext(ctx, spec, placement)
	if err != nil {
		return err
	}
	fmt.Printf("%s on %s (%v placement): solo IPC %.3f\n", ch.App, sys.Machine().Name, placement, ch.SoloIPC)
	fmt.Printf("%-16s %12s %12s\n", "dimension", "sensitivity", "contentiousness")
	for d := smite.Dimension(0); d < smite.NumDimensions; d++ {
		fmt.Printf("%-16s %11.2f%% %11.2f%%\n", d, ch.Sen[d]*100, ch.Con[d]*100)
	}
	return finishTrace()
}

// trainModel trains on the paper's even-numbered SPEC training set.
func trainModel(ctx context.Context, sys *smite.System, placement smite.Placement) (smite.Model, error) {
	train, _ := smite.TrainTestSplit()
	m, _, err := sys.TrainFromSetsContext(ctx, train, placement)
	return m, err
}

func predict(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	victim := fs.String("victim", "", "latency-sensitive / victim application")
	aggressor := fs.String("aggressor", "", "co-located batch / aggressor application")
	machine, placementS, fast, traceOut := commonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *victim == "" || *aggressor == "" {
		return fmt.Errorf("predict: -victim and -aggressor are required")
	}
	ctx, finishTrace := traceTo(ctx, *traceOut)
	v, err := smite.WorkloadByName(*victim)
	if err != nil {
		return err
	}
	a, err := smite.WorkloadByName(*aggressor)
	if err != nil {
		return err
	}
	sys, err := newSystem(*machine, *fast)
	if err != nil {
		return err
	}
	placement, err := parsePlacement(*placementS)
	if err != nil {
		return err
	}
	fmt.Println("training the prediction model on the even-numbered SPEC set...")
	m, err := trainModel(ctx, sys, placement)
	if err != nil {
		return err
	}
	chV, err := sys.CharacterizeContext(ctx, v, placement)
	if err != nil {
		return err
	}
	chA, err := sys.CharacterizeContext(ctx, a, placement)
	if err != nil {
		return err
	}
	deg := m.PredictPair(chV, chA)
	fmt.Printf("predicted degradation of %s next to %s (%v): %.2f%%\n", v.Name, a.Name, placement, deg*100)
	for _, target := range []float64{0.95, 0.90, 0.85} {
		verdict := "UNSAFE"
		if m.SafeColocation(chV, chA, target) {
			verdict = "safe"
		}
		fmt.Printf("  QoS target %.0f%%: %s\n", target*100, verdict)
	}
	return finishTrace()
}

func measure(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("measure", flag.ExitOnError)
	victim := fs.String("victim", "", "victim application")
	aggressor := fs.String("aggressor", "", "aggressor application")
	timelineOut := fs.String("timeline-out", "", "write a cycle-sampled contention timeline of the co-located run to this file (Chrome-trace JSON)")
	parallelism := fs.Int("parallelism", 0, "simulation parallelism (0 = one worker per CPU)")
	machine, placementS, fast, traceOut := commonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *victim == "" || *aggressor == "" {
		return fmt.Errorf("measure: -victim and -aggressor are required")
	}
	ctx, finishTrace := traceTo(ctx, *traceOut)
	v, err := smite.WorkloadByName(*victim)
	if err != nil {
		return err
	}
	a, err := smite.WorkloadByName(*aggressor)
	if err != nil {
		return err
	}
	sys, err := newSystem(*machine, *fast, smite.WithParallelism(*parallelism))
	if err != nil {
		return err
	}
	placement, err := parsePlacement(*placementS)
	if err != nil {
		return err
	}
	pm, err := sys.MeasurePairContext(ctx, v, a, placement)
	if err != nil {
		return err
	}
	fmt.Printf("measured co-location (%v) on %s:\n", placement, sys.Machine().Name)
	fmt.Printf("  %-16s degrades %6.2f%%\n", pm.A, pm.DegA*100)
	fmt.Printf("  %-16s degrades %6.2f%%\n", pm.B, pm.DegB*100)
	if *timelineOut != "" {
		if err := writeTimeline(ctx, *machine, *fast, v, a, placement, *timelineOut); err != nil {
			return err
		}
		fmt.Printf("wrote contention timeline to %s\n", *timelineOut)
	}
	return finishTrace()
}

// writeTimeline re-runs the co-located pair with a timeline recorder
// attached and renders the cycle-sampled counters as Chrome-trace JSON.
// The sampled run is a single sequential simulation — bit-identical to the
// measurement (the recorder is read-only) and independent of -parallelism,
// so the written file is deterministic across runs and worker counts.
func writeTimeline(ctx context.Context, machine string, fast bool, v, a *smite.Spec, placement smite.Placement, path string) error {
	m, opts, err := machineOptions(machine, fast)
	if err != nil {
		return err
	}
	rec := timeline.New()
	opts.Sampler = rec
	if _, err := profile.ColocateContext(ctx, m.Config(), profile.App(v), profile.App(a), placement, opts); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
