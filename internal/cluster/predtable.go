package cluster

import (
	"context"
	"fmt"

	"repro/internal/sched"
	"repro/internal/service"
)

// qosValue maps a degradation to QoS under a QoS definition; the services
// map is only consulted for tail QoS.
func qosValue(kind QoSKind, services map[string]service.Service, lat string, deg float64) (float64, error) {
	switch kind {
	case QoSAvg:
		return service.AvgQoS(deg), nil
	case QoSTail:
		svc, ok := services[lat]
		if !ok {
			return 0, fmt.Errorf("cluster: no service parameters for %s", lat)
		}
		return svc.TailQoS(deg), nil
	}
	return 0, fmt.Errorf("cluster: unknown QoS kind %d", kind)
}

// PredTable is the dense QoS surface the discrete-event simulator places
// against: for every (latency app, batch app, instance count) cell it
// holds the QoS implied by the predicted and by the measured degradation,
// precomputed so the event loop is pure array lookups. It is built once
// through the Predictor seam (BuildPredTable) and embedded verbatim in
// recorded traces, which is what makes a replayed run self-contained.
type PredTable struct {
	LatencyApps  []string `json:"latency_apps"`
	BatchApps    []string `json:"batch_apps"`
	MaxInstances int      `json:"max_instances"`
	QoS          QoSKind  `json:"qos"`
	// PredQoS and ActualQoS are indexed by Cell(lat, batch, n).
	PredQoS   []float64 `json:"pred_qos"`
	ActualQoS []float64 `json:"actual_qos"`
	// PredDeg, ActualDeg and PredBound carry the raw degradation surface
	// beneath the QoS values, plus the predictor's error bound (non-zero
	// only on surrogate-tier answers). The SLO admission policy needs the
	// degradations themselves — Eq. 6 consumes a degradation, not a QoS —
	// so these are populated by BuildPredTable; they may be absent
	// (legacy traces), in which case SLO-gated runs are rejected by
	// SimConfig.Validate.
	PredDeg   []float64 `json:"pred_deg,omitempty"`
	ActualDeg []float64 `json:"actual_deg,omitempty"`
	PredBound []float64 `json:"pred_bound,omitempty"`
}

// Cell flattens (lat index, batch index, instances 1..MaxInstances) into
// the table's storage index.
func (t *PredTable) Cell(lat, batch, n int) int {
	return (lat*len(t.BatchApps)+batch)*t.MaxInstances + n - 1
}

// Validate rejects structurally broken tables (wrong slice lengths, empty
// application sets).
func (t *PredTable) Validate() error {
	if t == nil {
		return fmt.Errorf("cluster: nil prediction table")
	}
	if len(t.LatencyApps) == 0 || len(t.BatchApps) == 0 || t.MaxInstances <= 0 {
		return fmt.Errorf("cluster: prediction table needs apps and a positive MaxInstances")
	}
	want := len(t.LatencyApps) * len(t.BatchApps) * t.MaxInstances
	if len(t.PredQoS) != want || len(t.ActualQoS) != want {
		return fmt.Errorf("cluster: prediction table has %d/%d cells, want %d",
			len(t.PredQoS), len(t.ActualQoS), want)
	}
	// The degradation surface is optional (legacy traces omit it) but
	// must be complete when present.
	for _, s := range [][]float64{t.PredDeg, t.ActualDeg, t.PredBound} {
		if len(s) != 0 && len(s) != want {
			return fmt.Errorf("cluster: prediction table degradation surface has %d cells, want %d", len(s), want)
		}
	}
	return nil
}

// HasDegradations reports whether the raw degradation surface (needed by
// the SLO admission policy) is present.
func (t *PredTable) HasDegradations() bool {
	want := len(t.LatencyApps) * len(t.BatchApps) * t.MaxInstances
	return len(t.PredDeg) == want && len(t.ActualDeg) == want && len(t.PredBound) == want
}

// BuildPredTable precomputes the QoS surface for every
// (latency, batch, 1..MaxInstances) cell of tbl under the given QoS
// definition. Predicted degradations come from pred when non-nil — the
// Predictor seam, typically the microsecond surrogate tier with the
// engine-measured table as fallback — and from the table's own Predicted
// entries otherwise; measured degradations always come from the table.
// Cells fan out across workers via sched.Map, so the build is
// bit-identical at any worker count.
func BuildPredTable(ctx context.Context, tbl *Table, services map[string]service.Service, qos QoSKind, pred Predictor, workers int) (*PredTable, error) {
	if tbl == nil {
		return nil, fmt.Errorf("cluster: BuildPredTable needs a table")
	}
	if err := tbl.Complete(); err != nil {
		return nil, err
	}
	out := &PredTable{
		LatencyApps:  append([]string(nil), tbl.LatencyApps...),
		BatchApps:    append([]string(nil), tbl.BatchApps...),
		MaxInstances: tbl.MaxInstances,
		QoS:          qos,
	}
	cells := len(out.LatencyApps) * len(out.BatchApps) * out.MaxInstances
	out.PredQoS = make([]float64, cells)
	out.ActualQoS = make([]float64, cells)
	out.PredDeg = make([]float64, cells)
	out.ActualDeg = make([]float64, cells)
	out.PredBound = make([]float64, cells)
	err := sched.Map(ctx, cells, workers, func(ctx context.Context, i int) error {
		n := i%out.MaxInstances + 1
		b := (i / out.MaxInstances) % len(out.BatchApps)
		l := i / (out.MaxInstances * len(out.BatchApps))
		lat, batch := out.LatencyApps[l], out.BatchApps[b]
		e, err := tbl.Get(lat, batch, n)
		if err != nil {
			return err
		}
		dp, bound := e.Predicted, 0.0
		if pred != nil {
			p, err := pred.Predict(lat, batch, n)
			if err != nil {
				return err
			}
			dp, bound = p.Deg, p.Bound
		}
		out.PredDeg[i], out.ActualDeg[i], out.PredBound[i] = dp, e.Actual, bound
		if out.PredQoS[i], err = qosValue(qos, services, lat, dp); err != nil {
			return err
		}
		out.ActualQoS[i], err = qosValue(qos, services, lat, e.Actual)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
