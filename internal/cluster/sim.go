package cluster

import (
	"context"
	"fmt"
	"math"
	"sort"

	clworkload "repro/internal/cluster/workload"
	"repro/internal/sched"
	"repro/internal/xrand"
)

// This file is the warehouse-scale discrete-event core: tens of
// thousands of machines, millions of placement/churn events, seconds of
// wall-clock. It replaces full-fleet scans with incremental
// contention-aware placement: machines live in per-shard occupancy
// buckets keyed by (latency app, resident batch app, instance count), and
// because predicted QoS depends only on that state triple, best-fit
// admission is a scan over O(apps × instances) buckets instead of O(fleet)
// machines, independent of fleet size.
//
// Determinism. The fleet is statically sharded into scheduling cells
// (machine → shard, jobs dealt to shards by the workload generator), and
// each shard is a self-contained sequential simulation: one indexed
// min-heap of pending departures merged two-way with the shard's
// time-sorted exogenous stream, ties broken departures-first, then by
// shard-local sequence numbers. Shards never communicate, so fanning them
// across sched.Map workers is bit-identical at any worker count; the
// per-shard placement logs are merged by (At, Shard, Seq) afterwards.
// internal/simtest pins replay determinism as a 20-seed law.

// DefaultShards is the shard count used when SimConfig.Shards is zero:
// enough cells to keep a machine's worth of workers busy without
// fragmenting small fleets.
const DefaultShards = 16

// SimConfig parameterises one discrete-event cluster run. The workload
// config carries the fleet size, horizon, seed and application-population
// dimensions; the prediction table carries the QoS surface placements are
// decided (and scored) on.
type SimConfig struct {
	// Workload shapes the exogenous event streams (arrival curves, mix
	// drift, churn) and fixes Machines/Horizon/Seed/Lats/Batches.
	Workload clworkload.Config `json:"workload"`
	// Shards is the number of scheduling cells the fleet is split into
	// (0 = DefaultShards). More shards means more available parallelism
	// and smaller cells; results depend on the shard count but not on the
	// worker count.
	Shards int `json:"shards"`
	// Policy decides admissions: SMiTe places on predicted QoS, Oracle on
	// measured QoS, Random ignores interference and packs by capacity.
	Policy PolicyKind `json:"policy"`
	// Target is the QoS floor in (0, 1] placements must respect.
	Target float64 `json:"target"`
	// ThreadsPerServer and ContextsPerServer set the machine geometry;
	// ContextsPerServer − ThreadsPerServer idle contexts take batch
	// instances, at most Table.MaxInstances of them.
	ThreadsPerServer  int `json:"threads_per_server"`
	ContextsPerServer int `json:"contexts_per_server"`
	// Table is the precomputed QoS surface (BuildPredTable).
	Table *PredTable `json:"table"`
	// SLO carries the per-class tail-latency budgets and queue rates.
	// Required (with a table holding the degradation surface) when
	// Policy is PolicySLO or PolicyClosedLoop; optional otherwise, in
	// which case it only switches violation accounting from the QoS floor
	// to the class budgets so QoS-floor policies can be compared against
	// the SLO gate on identical terms.
	SLO *SLOSimParams `json:"slo,omitempty"`
	// Drift, when set, shifts the measured degradation surface mid-run
	// (closedloop.go). Violation accounting follows the shifted surface
	// for every policy, so static-vs-closed-loop comparisons are
	// apples-to-apples. Schema addition: traces without it replay
	// unchanged (trace format version 1).
	Drift *DriftSpec `json:"drift,omitempty"`
}

// withDefaults normalises zero-valued knobs.
func (c SimConfig) withDefaults() SimConfig {
	if c.Shards == 0 {
		c.Shards = DefaultShards
	}
	c.SLO = c.SLO.withDefaults()
	return c
}

// Validate rejects configurations RunSim cannot execute.
func (c SimConfig) Validate() error {
	c = c.withDefaults()
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.Shards < 0 {
		return fmt.Errorf("cluster: sim shards must be non-negative, got %d", c.Shards)
	}
	switch c.Policy {
	case PolicySMiTe, PolicyOracle, PolicyRandom, PolicySLO, PolicyClosedLoop:
	default:
		return fmt.Errorf("cluster: unknown policy %d", int(c.Policy))
	}
	if (c.Policy == PolicySLO || c.Policy == PolicyClosedLoop) && c.SLO == nil {
		return fmt.Errorf("cluster: policy %s needs SLO parameters", c.Policy)
	}
	if err := c.Drift.Validate(c.Workload.Batches); err != nil {
		return err
	}
	if c.SLO != nil {
		if err := c.SLO.Validate(); err != nil {
			return err
		}
	}
	if c.Target <= 0 || c.Target > 1 {
		return fmt.Errorf("cluster: QoS target %.3f outside (0,1]", c.Target)
	}
	if c.ThreadsPerServer <= 0 || c.ContextsPerServer <= 0 {
		return fmt.Errorf("cluster: server geometry must be positive")
	}
	if c.ThreadsPerServer >= c.ContextsPerServer {
		return fmt.Errorf("cluster: %d threads leave no idle context of %d", c.ThreadsPerServer, c.ContextsPerServer)
	}
	if err := c.Table.Validate(); err != nil {
		return err
	}
	if c.SLO != nil && !c.Table.HasDegradations() {
		return fmt.Errorf("cluster: SLO-gated run needs a table with the degradation surface (rebuild with BuildPredTable)")
	}
	if len(c.Table.LatencyApps) != c.Workload.Lats || len(c.Table.BatchApps) != c.Workload.Batches {
		return fmt.Errorf("cluster: table is %d×%d apps but workload generates %d×%d",
			len(c.Table.LatencyApps), len(c.Table.BatchApps), c.Workload.Lats, c.Workload.Batches)
	}
	if c.Table.MaxInstances > c.ContextsPerServer-c.ThreadsPerServer {
		return fmt.Errorf("cluster: %d instances exceed %d idle contexts",
			c.Table.MaxInstances, c.ContextsPerServer-c.ThreadsPerServer)
	}
	return nil
}

// GenerateEvents produces the per-shard exogenous event streams for the
// configured workload — the recordable half of a run.
func GenerateEvents(cfg SimConfig) ([][]clworkload.Event, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	shards := make([][]clworkload.Event, cfg.Shards)
	for s := range shards {
		ev, err := clworkload.Generate(cfg.Workload, s, cfg.Shards)
		if err != nil {
			return nil, err
		}
		shards[s] = ev
	}
	return shards, nil
}

// Placement is one scheduler decision in the merged log. Rejections are
// logged too (Machine = −1), so the log is a complete decision record and
// bit-for-bit comparable across replays.
type Placement struct {
	At      float64 `json:"t"`
	Shard   int32   `json:"s"`
	Seq     uint32  `json:"q"` // shard-local decision sequence
	Machine int64   `json:"m"` // global machine id; −1 = rejected
	Lat     int16   `json:"l"` // latency app of the machine; −1 = rejected
	Batch   int16   `json:"b"`
	N       int16   `json:"n"` // resident instances after placement; 0 = rejected
	// Kind types non-admission decisions (PlacementMigrate); empty for
	// ordinary placements and rejections, so pre-closed-loop logs decode
	// and hash identically.
	Kind string `json:"k,omitempty"`
	// From is the machine a migrated instance left (Kind=PlacementMigrate).
	From int64 `json:"f,omitempty"`
}

// PlacementMigrate marks a closed-loop migration decision in the log:
// Machine/Lat/N describe the receiving machine, From the drifted one.
const PlacementMigrate = "migrate"

// SimResult aggregates one discrete-event run.
type SimResult struct {
	Policy PolicyKind
	QoS    QoSKind
	Target float64

	// Events counts every processed event: exogenous arrivals/churn plus
	// endogenous job departures.
	Events int
	// Arrived/Placed/Rejected count batch jobs; Departed jobs that ran to
	// completion; Evicted jobs killed by a machine decommission.
	Arrived, Placed, Rejected, Departed, Evicted int
	// MachinesStart/End/Ups/Downs describe fleet churn.
	MachinesStart, MachinesEnd, MachineUps, MachineDowns int

	// BaselineUtilization is the no-co-location context utilisation;
	// MeanUtilization the machine-time-weighted mean with co-location;
	// PeakUtilization the largest instantaneous shard utilisation.
	BaselineUtilization float64
	MeanUtilization     float64
	PeakUtilization     float64

	// Violations counts placements that actually missed their objective
	// at the resulting occupancy — the measured QoS under the target for
	// QoS-floor runs, the measured Eq. 6 tail over the class budget when
	// SLO parameters are set (the post-drift surface once SimConfig.Drift
	// lands); ViolationFrac normalises by Placed.
	Violations    int
	ViolationFrac float64

	// Closed-loop activity (PolicyClosedLoop only): confirmed drift
	// detections, (lat, batch)-pair re-characterizations, and attempted
	// instance migrations.
	Detections       int
	Recharacterized  int
	Migrations       int
	MigrationsFailed int

	// SLOParams echoes the run's (normalised) SLO parameters, nil for
	// QoS-floor runs; Summary reads its saturation thresholds.
	SLOParams *SLOSimParams

	// Log is the merged placement log, ordered by (At, Shard, Seq).
	Log []Placement
}

// RunSim executes the discrete-event simulation over the given per-shard
// exogenous streams (GenerateEvents for a fresh run, ReadTrace for a
// replay), fanning shards across at most workers sched workers. The
// result — including the merged placement log — is bit-identical for
// every workers value.
func RunSim(ctx context.Context, cfg SimConfig, shards [][]clworkload.Event, workers int) (SimResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return SimResult{}, err
	}
	if len(shards) != cfg.Shards {
		return SimResult{}, fmt.Errorf("cluster: %d event shards for %d sim shards", len(shards), cfg.Shards)
	}
	// The SLO admission/violation surface is a pure function of the
	// table and the SLO parameters; precompute it once and share it
	// read-only across shards.
	var gate *sloGate
	if cfg.SLO != nil {
		var err error
		if gate, err = buildSLOGate(cfg.Table, cfg.SLO); err != nil {
			return SimResult{}, err
		}
	}
	// Like the gate, the post-drift measured surface is a pure function of
	// the table and the spec; precompute it once, read-only.
	var dw *driftWorld
	if cfg.Drift != nil {
		dw = buildDriftWorld(cfg.Table, cfg.SLO, cfg.Drift)
	}
	results := make([]shardResult, cfg.Shards)
	err := sched.Map(ctx, cfg.Shards, workers, func(ctx context.Context, i int) error {
		r, err := runShard(ctx, &cfg, gate, dw, i, shards[i])
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return SimResult{}, err
	}
	return mergeShards(cfg, results), nil
}

// shardResult is one cell's contribution before the deterministic merge.
type shardResult struct {
	events                       int
	arrived, placed, rejected    int
	departed, evicted            int
	machinesStart, machinesEnd   int
	ups, downs                   int
	violations                   int
	detections, recharacterized  int
	migrations, migrationsFailed int
	busyInt, ctxInt, baseInt     float64 // utilisation integrals
	peak                         float64
	log                          []Placement
}

func mergeShards(cfg SimConfig, rs []shardResult) SimResult {
	out := SimResult{Policy: cfg.Policy, QoS: cfg.Table.QoS, Target: cfg.Target, SLOParams: cfg.SLO}
	logLen := 0
	for _, r := range rs {
		out.Events += r.events
		out.Arrived += r.arrived
		out.Placed += r.placed
		out.Rejected += r.rejected
		out.Departed += r.departed
		out.Evicted += r.evicted
		out.MachinesStart += r.machinesStart
		out.MachinesEnd += r.machinesEnd
		out.MachineUps += r.ups
		out.MachineDowns += r.downs
		out.Violations += r.violations
		out.Detections += r.detections
		out.Recharacterized += r.recharacterized
		out.Migrations += r.migrations
		out.MigrationsFailed += r.migrationsFailed
		if r.peak > out.PeakUtilization {
			out.PeakUtilization = r.peak
		}
		logLen += len(r.log)
	}
	var busy, ctx, base float64
	for _, r := range rs {
		busy += r.busyInt
		ctx += r.ctxInt
		base += r.baseInt
	}
	if ctx > 0 {
		out.MeanUtilization = busy / ctx
		out.BaselineUtilization = base / ctx
	}
	if out.Placed > 0 {
		out.ViolationFrac = float64(out.Violations) / float64(out.Placed)
	}
	out.Log = make([]Placement, 0, logLen)
	for _, r := range rs {
		out.Log = append(out.Log, r.log...)
	}
	// Each shard log is already (At, Seq)-ordered; the global order is the
	// deterministic (At, Shard, Seq) merge.
	sort.Slice(out.Log, func(i, j int) bool {
		a, b := out.Log[i], out.Log[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Seq < b.Seq
	})
	return out
}

// simMachine is one server's live state inside a shard.
type simMachine struct {
	lat   int16
	batch int16 // −1 when no batch app is resident
	n     int16
	up    bool
	jobs  []int64 // live departure-event handles
}

// shardSim is the per-cell simulation state.
type shardSim struct {
	cfg   *SimConfig
	t     *PredTable
	gate  *sloGate    // non-nil when cfg.SLO is set; read-only
	dw    *driftWorld // non-nil when cfg.Drift is set; read-only
	cl    *closedLoop // non-nil for PolicyClosedLoop; shard-local
	shard int

	machines []simMachine
	upIDs    []int32 // sorted local ids of up machines
	buckets  []*iheap
	events   *iheap          // pending departures, keyed (time, handle)
	owner    map[int64]int32 // departure handle -> local machine id
	handle   int64
	rng      *xrand.Rand // Random-policy draws only

	nBatch, maxInst int

	// Utilisation integrals.
	busyNow, ctxNow, baseNow int
	lastT                    float64
	res                      shardResult
}

// bucketIdx flattens machine state (lat, resident batch or −1, n) to its
// occupancy bucket. batchState 0 is "empty"; 1+b is "running batch b".
func (s *shardSim) bucketIdx(lat, batchState, n int) int {
	return (lat*(s.nBatch+1)+batchState)*(s.maxInst+1) + n
}

func (s *shardSim) stateOf(m *simMachine) int {
	if m.batch < 0 {
		return s.bucketIdx(int(m.lat), 0, 0)
	}
	return s.bucketIdx(int(m.lat), 1+int(m.batch), int(m.n))
}

// globalID reconstructs the fleet-wide machine id from a local one.
func (s *shardSim) globalID(local int32) int64 {
	return int64(s.shard) + int64(local)*int64(s.cfg.Shards)
}

// account integrates utilisation up to now.
func (s *shardSim) account(now float64) {
	dt := now - s.lastT
	if dt > 0 && s.ctxNow > 0 {
		s.res.busyInt += float64(s.busyNow) * dt
		s.res.ctxInt += float64(s.ctxNow) * dt
		s.res.baseInt += float64(s.baseNow) * dt
		if u := float64(s.busyNow) / float64(s.ctxNow); u > s.res.peak {
			s.res.peak = u
		}
	}
	s.lastT = now
}

// addMachine brings a machine up running latency app lat.
func (s *shardSim) addMachine(lat int) int32 {
	local := int32(len(s.machines))
	s.machines = append(s.machines, simMachine{lat: int16(lat), batch: -1})
	m := &s.machines[local]
	m.up = true
	s.upIDs = append(s.upIDs, local) // ids are monotone, so append keeps order
	s.buckets[s.stateOf(m)].Push(0, 0, int64(local))
	s.busyNow += s.cfg.ThreadsPerServer
	s.baseNow += s.cfg.ThreadsPerServer
	s.ctxNow += s.cfg.ContextsPerServer
	return local
}

// dropMachine decommissions the up machine with the given rank, cancelling
// its pending departures via the indexed heap.
func (s *shardSim) dropMachine(rank float64) {
	if len(s.upIDs) == 0 {
		return
	}
	i := int(rank * float64(len(s.upIDs)))
	if i >= len(s.upIDs) {
		i = len(s.upIDs) - 1
	}
	local := s.upIDs[i]
	s.upIDs = append(s.upIDs[:i], s.upIDs[i+1:]...)
	m := &s.machines[local]
	s.buckets[s.stateOf(m)].Remove(int64(local))
	for _, h := range m.jobs {
		s.events.Remove(h)
		delete(s.owner, h)
		s.res.evicted++
	}
	s.busyNow -= s.cfg.ThreadsPerServer + int(m.n)
	s.baseNow -= s.cfg.ThreadsPerServer
	s.ctxNow -= s.cfg.ContextsPerServer
	m.up = false
	m.jobs = m.jobs[:0]
	m.batch, m.n = -1, 0
	s.res.downs++
}

// place puts one instance of batch b on local machine id, scheduling its
// departure.
func (s *shardSim) place(local int32, b int, at, duration float64) {
	m := &s.machines[local]
	s.buckets[s.stateOf(m)].Remove(int64(local))
	m.batch = int16(b)
	m.n++
	s.buckets[s.stateOf(m)].Push(0, 0, int64(local))
	h := s.handle
	s.handle++
	s.events.Push(at+duration, uint64(h), h)
	s.owner[h] = local
	m.jobs = append(m.jobs, h)
	s.busyNow++
	s.res.placed++
	// Violation accounting: against the class tail-latency budget when
	// SLO parameters are set (for every policy, so greedy-vs-SLO studies
	// count violations identically), against the QoS floor otherwise —
	// reading the post-drift measured surface once the drift has landed,
	// again for every policy.
	cell := s.t.Cell(int(m.lat), b, int(m.n))
	drifted := s.dw != nil && at >= s.dw.at
	if s.gate != nil {
		violate := s.gate.violate
		if drifted {
			violate = s.dw.violate
		}
		if violate[cell] {
			s.res.violations++
		}
	} else {
		qos := s.t.ActualQoS[cell]
		if drifted {
			qos = s.dw.actualQoS[cell]
		}
		if qos < s.cfg.Target {
			s.res.violations++
		}
	}
	s.res.log = append(s.res.log, Placement{
		At: at, Shard: int32(s.shard), Seq: uint32(len(s.res.log)),
		Machine: s.globalID(local), Lat: m.lat, Batch: int16(b), N: m.n,
	})
	if s.cl != nil {
		s.observeClosedLoop(int(m.lat), b, cell, at)
	}
}

// depart completes the job behind a popped departure event.
func (s *shardSim) depart(h int64) {
	local := s.owner[h]
	delete(s.owner, h)
	m := &s.machines[local]
	for i, jh := range m.jobs {
		if jh == h {
			m.jobs = append(m.jobs[:i], m.jobs[i+1:]...)
			break
		}
	}
	s.buckets[s.stateOf(m)].Remove(int64(local))
	m.n--
	if m.n == 0 {
		m.batch = -1
	}
	s.buckets[s.stateOf(m)].Push(0, 0, int64(local))
	s.busyNow--
	s.res.departed++
}

// admit picks the machine for one instance of batch b, or −1 to reject.
// SMiTe and Oracle are best-fit by QoS headroom, SLO best-fit by
// tail-latency slack under the admission gate — all over the occupancy
// buckets: O(lats × instances) bucket peeks, never a fleet scan — with
// deterministic tie-breaks (first admissible state in bucket order, then
// lowest machine id). Random probes the up-machine ring for spare
// capacity, ignoring QoS.
func (s *shardSim) admit(b int) int32 {
	if s.cfg.Policy == PolicyRandom {
		if len(s.upIDs) == 0 {
			return -1
		}
		start := s.rng.Intn(len(s.upIDs))
		for k := 0; k < len(s.upIDs); k++ {
			local := s.upIDs[(start+k)%len(s.upIDs)]
			m := &s.machines[local]
			if (m.batch < 0 || int(m.batch) == b) && int(m.n) < s.maxInst {
				return local
			}
		}
		return -1
	}
	// score reports whether the cell is admissible and its best-fit score
	// (lower is tighter). QoS-floor policies pack by QoS headroom above
	// the target; the SLO gate packs by predicted tail-latency slack
	// under the effective budget.
	var score func(cell int) (bool, float64)
	switch {
	case s.cfg.Policy == PolicyClosedLoop:
		// Same gate shape as PolicySLO, but over the shard's re-scored
		// working copy, which re-characterization rewrites mid-run.
		cl := s.cl
		score = func(cell int) (bool, float64) { return cl.admit[cell], cl.slack[cell] }
	case s.cfg.Policy == PolicySLO:
		g := s.gate
		score = func(cell int) (bool, float64) { return g.admit[cell], g.slack[cell] }
	default:
		qos := s.t.PredQoS
		if s.cfg.Policy == PolicyOracle {
			qos = s.t.ActualQoS
		}
		target := s.cfg.Target
		score = func(cell int) (bool, float64) {
			q := qos[cell]
			return q >= target, q - target
		}
	}
	bestState := -1
	bestScore := math.Inf(1)
	for lat := 0; lat < len(s.t.LatencyApps); lat++ {
		// Empty machines take the first instance; occupied ones stack more
		// of the same batch kind up to MaxInstances.
		if s.buckets[s.bucketIdx(lat, 0, 0)].Len() > 0 {
			if ok, sc := score(s.t.Cell(lat, b, 1)); ok && sc < bestScore {
				bestScore = sc
				bestState = s.bucketIdx(lat, 0, 0)
			}
		}
		for n := 1; n < s.maxInst; n++ {
			if s.buckets[s.bucketIdx(lat, 1+b, n)].Len() == 0 {
				continue
			}
			if ok, sc := score(s.t.Cell(lat, b, n+1)); ok && sc < bestScore {
				bestScore = sc
				bestState = s.bucketIdx(lat, 1+b, n)
			}
		}
	}
	if bestState < 0 {
		return -1
	}
	return int32(s.buckets[bestState].Min().handle)
}

// ctxCheckInterval bounds how stale a cancellation can go unnoticed in
// the per-shard event loop.
const ctxCheckInterval = 1 << 16

func runShard(ctx context.Context, cfg *SimConfig, gate *sloGate, dw *driftWorld, shard int, exo []clworkload.Event) (shardResult, error) {
	nLat, nBatch := cfg.Workload.Lats, cfg.Workload.Batches
	s := &shardSim{
		cfg: cfg, t: cfg.Table, gate: gate, dw: dw, shard: shard,
		nBatch: nBatch, maxInst: cfg.Table.MaxInstances,
		events: newIheap(),
		owner:  make(map[int64]int32),
		rng:    xrand.New(cfg.Workload.Seed ^ 0x51A1 ^ (uint64(shard)+1)*0xBF58476D1CE4E5B9),
	}
	if cfg.Policy == PolicyClosedLoop {
		s.cl = newClosedLoop(cfg.Table, gate, cfg.SLO)
	}
	s.buckets = make([]*iheap, nLat*(nBatch+1)*(s.maxInst+1))
	for i := range s.buckets {
		s.buckets[i] = newIheap()
	}

	// Initial fleet: machines are dealt to shards round-robin, and their
	// latency apps round-robin over the population, so shard membership is
	// a pure function of the global machine id.
	for g := shard; g < cfg.Workload.Machines; g += cfg.Shards {
		s.addMachine(g % nLat)
	}
	s.res.machinesStart = len(s.upIDs)

	horizon := cfg.Workload.Horizon
	for ci := 0; ; {
		// Two-way deterministic merge: pending departures fire before
		// exogenous events at the same instant (capacity frees first).
		var at float64
		useDeparture := false
		switch {
		case s.events.Len() > 0 && ci < len(exo):
			at = exo[ci].At
			if d := s.events.Min().at; d <= at {
				at, useDeparture = d, true
			}
		case s.events.Len() > 0:
			at, useDeparture = s.events.Min().at, true
		case ci < len(exo):
			at = exo[ci].At
		default:
			at = horizon
		}
		if at >= horizon {
			break
		}
		if s.res.events%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return shardResult{}, err
			}
		}
		s.account(at)
		s.res.events++
		if useDeparture {
			s.depart(s.events.Pop().handle)
			continue
		}
		ev := exo[ci]
		ci++
		switch ev.Kind {
		case clworkload.KindMachineUp:
			s.addMachine(ev.Lat)
			s.res.ups++
		case clworkload.KindMachineDown:
			s.dropMachine(ev.Rank)
		case clworkload.KindJobArrive:
			s.res.arrived++
			if local := s.admit(ev.Batch); local >= 0 {
				s.place(local, ev.Batch, ev.At, ev.Duration)
			} else {
				s.res.rejected++
				s.res.log = append(s.res.log, Placement{
					At: ev.At, Shard: int32(s.shard), Seq: uint32(len(s.res.log)),
					Machine: -1, Lat: -1, Batch: int16(ev.Batch),
				})
			}
		default:
			return shardResult{}, fmt.Errorf("unknown event kind %d at seq %d", ev.Kind, ev.Seq)
		}
	}
	s.account(horizon)
	s.res.machinesEnd = len(s.upIDs)
	return s.res, nil
}
