package cluster

import (
	"fmt"

	"repro/internal/isol"
)

// This file is the cluster half of the hardware QoS-enforcement subsystem
// (DESIGN.md §15): heterogeneous machine generations with per-generation
// QoS surfaces, the discrete isolation ladder PolicyIsolation actuates
// before migrating a violating co-location, and the pluggable
// thread-to-core allocation policies the admission scan scores with.

// MachineGenSpec describes one machine generation of a heterogeneous
// fleet: a name, its share of the machine population, its geometry, and
// its own prediction table — degradation surfaces differ across
// generations, so a co-location that violates on one part may be fine on
// another. Every generation's table must cover the same application
// populations with the same MaxInstances (same workload, different
// hardware).
type MachineGenSpec struct {
	// Name labels the generation (conventionally an isa.MachineGens name:
	// snb, ivb, power7, smt4, biglittle).
	Name string `json:"name"`
	// Count is the generation's share of the fleet: machine with global id
	// g belongs to the generation owning slot g mod ΣCounts, so membership
	// is a pure function of the id and survives churn deterministically.
	Count int `json:"count"`
	// Threads and Contexts override the fleet-wide server geometry for
	// this generation; zero inherits SimConfig.ThreadsPerServer /
	// ContextsPerServer.
	Threads  int `json:"threads,omitempty"`
	Contexts int `json:"contexts,omitempty"`
	// Table is the generation's QoS surface (BuildPredTable against this
	// generation's machine model).
	Table *PredTable `json:"table"`
}

// geometry resolves the generation's server geometry against the
// fleet-wide defaults.
func (g MachineGenSpec) geometry(c *SimConfig) (threads, contexts int) {
	threads, contexts = c.ThreadsPerServer, c.ContextsPerServer
	if g.Threads != 0 {
		threads = g.Threads
	}
	if g.Contexts != 0 {
		contexts = g.Contexts
	}
	return threads, contexts
}

// IsolSimParams parameterises PolicyIsolation: the discrete ladder of
// isolation operating points a machine can be escalated through. Nil
// Levels picks isol.DefaultSettings.
type IsolSimParams struct {
	Levels []isol.Setting `json:"levels,omitempty"`
}

func (p *IsolSimParams) withDefaults() *IsolSimParams {
	q := IsolSimParams{}
	if p != nil {
		q = *p
	}
	if q.Levels == nil {
		q.Levels = isol.DefaultSettings()
	}
	return &q
}

// Validate rejects ladders the policy cannot actuate.
func (p *IsolSimParams) Validate() error {
	if p == nil {
		return fmt.Errorf("cluster: isolation policy needs isolation parameters")
	}
	return isol.ValidateSettings(p.Levels)
}

// AllocPolicy is one pluggable thread-to-core allocation policy: a scoring
// function over the candidate (machine-state, batch) cells the admission
// scan enumerates. Lower score wins; ties keep the earliest candidate in
// the deterministic bucket-scan order (generation, level, latency app,
// occupancy), then the lowest machine id — so every policy is exactly as
// reproducible as the default. The family mirrors the SMT-aware allocation
// policies studied for real schedulers (PAPERS.md): greedy tightest-fit
// co-location, naive first-fit, load spreading, and contention-aware
// minimum-degradation variants.
type AllocPolicy struct {
	Name        string
	Description string
	// Score ranks an admissible candidate. slack is the admission
	// headroom (QoS above target, or tail-latency slack under the
	// effective budget), n the instance count after placement, predDeg
	// the predicted victim degradation at that occupancy.
	Score func(slack float64, n int, predDeg float64) float64
}

// AllocPolicies lists the built-in allocation policies in a stable order.
// bestfit is the default and reproduces the historical greedy behaviour
// bit-for-bit.
func AllocPolicies() []AllocPolicy {
	return []AllocPolicy{
		{
			Name:        "bestfit",
			Description: "tightest admissible fit: pack the machine with the least headroom (greedy co-location, the default)",
			Score:       func(slack float64, n int, predDeg float64) float64 { return slack },
		},
		{
			Name:        "firstfit",
			Description: "first admissible machine in deterministic scan order",
			Score:       func(slack float64, n int, predDeg float64) float64 { return 0 },
		},
		{
			Name:        "spread",
			Description: "widest headroom first: spread instances across the fleet",
			Score:       func(slack float64, n int, predDeg float64) float64 { return -slack },
		},
		{
			Name:        "minload",
			Description: "fewest resident instances first: balance occupancy",
			Score:       func(slack float64, n int, predDeg float64) float64 { return float64(n) },
		},
		{
			Name:        "mindeg",
			Description: "smallest predicted victim degradation first: contention-aware",
			Score:       func(slack float64, n int, predDeg float64) float64 { return predDeg },
		},
	}
}

// AllocPolicyByName resolves an allocation policy; the empty name is the
// bestfit default.
func AllocPolicyByName(name string) (AllocPolicy, error) {
	if name == "" {
		name = "bestfit"
	}
	all := AllocPolicies()
	for _, p := range all {
		if p.Name == name {
			return p, nil
		}
	}
	names := ""
	for i, p := range all {
		if i > 0 {
			names += ", "
		}
		names += p.Name
	}
	return AllocPolicy{}, fmt.Errorf("cluster: unknown alloc policy %q (have %s)", name, names)
}

// buildSLOGateScaled is buildSLOGate with the isolation level's DegScale
// folded in: both the predicted and measured degradations shrink by the
// level's shielding factor, so each (generation, level) pair gets its own
// admission/violation surface and the event loop stays pure array lookups.
func buildSLOGateScaled(t *PredTable, p *SLOSimParams, scale float64) (*sloGate, error) {
	if scale == 1 {
		return buildSLOGate(t, p)
	}
	scaled := *t
	scaled.PredDeg = scaleSlice(t.PredDeg, scale)
	scaled.ActualDeg = scaleSlice(t.ActualDeg, scale)
	scaled.PredBound = scaleSlice(t.PredBound, scale)
	return buildSLOGate(&scaled, p)
}

func scaleSlice(xs []float64, scale float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * scale
	}
	return out
}

// taxOf is the machine's contribution to the fleet throughput-tax
// integral: every resident instance forfeits the engaged level's
// ThroughputTax fraction of its throughput. Exactly zero whenever the
// isolation ladder is off, so the accounting never perturbs
// pre-isolation integrals.
func (s *shardSim) taxOf(m *simMachine) float64 {
	if s.nLevels <= 1 || m.level == 0 {
		return 0
	}
	return float64(m.n) * s.levels[m.level].ThroughputTax
}

// enforceIsolation runs PolicyIsolation's escalate-then-migrate ladder for
// the placement that just landed on m: if the machine's current operating
// point leaves the co-location violating its class budget, escalate to the
// weakest level that clears it (an isolation actuation, not a violation);
// only when no level clears does the violation count — the caller then
// migrates the instance away as the last resort. Returns whether the
// violation survived every level.
func (s *shardSim) enforceIsolation(m *simMachine, cell int) (unresolved bool) {
	gates := s.gates[m.gen]
	baseViolation := gates[0].violate[cell]
	if gates[m.level].violate[cell] {
		for l := int(m.level) + 1; l < s.nLevels; l++ {
			if !gates[l].violate[cell] {
				m.level = int16(l)
				s.res.isolations++
				break
			}
		}
	}
	if gates[m.level].violate[cell] {
		s.res.violations++
		return true
	}
	if baseViolation {
		// The unisolated placement would have violated; the engaged level
		// absorbed it without moving anything.
		s.res.isolationResolved++
	}
	return false
}

// migrateNewest moves the just-placed instance off machine local when no
// isolation level could absorb its violation — migration as the last rung
// of the enforcement ladder. The source machine is taken out of the bucket
// scan during re-admission so the instance cannot land straight back.
func (s *shardSim) migrateNewest(local int32, b int, at float64) {
	vm := &s.machines[local]
	state := s.stateOf(vm)
	s.buckets[state].Remove(int64(local))
	target := s.admit(b)
	if target < 0 {
		s.buckets[state].Push(0, 0, int64(local))
		s.res.migrationsFailed++
		return
	}
	oldTax := s.taxOf(vm)
	h := vm.jobs[len(vm.jobs)-1]
	vm.jobs = vm.jobs[:len(vm.jobs)-1]
	vm.n--
	if vm.n == 0 {
		vm.batch = -1
		vm.level = 0
	}
	s.buckets[s.stateOf(vm)].Push(0, 0, int64(local))
	s.taxNow += s.taxOf(vm) - oldTax

	tm := &s.machines[target]
	s.buckets[s.stateOf(tm)].Remove(int64(target))
	oldTax = s.taxOf(tm)
	tm.batch = int16(b)
	tm.n++
	s.buckets[s.stateOf(tm)].Push(0, 0, int64(target))
	s.taxNow += s.taxOf(tm) - oldTax
	tm.jobs = append(tm.jobs, h)
	s.owner[h] = target

	s.res.migrations++
	s.res.log = append(s.res.log, Placement{
		At: at, Shard: int32(s.shard), Seq: uint32(len(s.res.log)),
		Machine: s.globalID(target), Lat: tm.lat, Batch: int16(b), N: tm.n,
		Kind: PlacementMigrate, From: s.globalID(local),
	})
}

// simWorld is the read-only per-run state RunSim precomputes once and
// shares across shards: per-generation tables and geometry, the
// per-(generation, level) admission gates, the isolation ladder, the
// drift surface and the allocation scorer.
type simWorld struct {
	tables []*PredTable
	gates  [][]*sloGate // [gen][level]; nil without SLO parameters
	geoms  []genGeom    // per-generation server geometry, len ≥ 1
	genCum []int        // cumulative generation counts; nil when homogeneous
	levels []isol.Setting
	dw     *driftWorld
	alloc  func(slack float64, n int, predDeg float64) float64 // nil = bestfit fast path
}

// genGeom is one generation's server geometry.
type genGeom struct {
	threads, contexts int
}

// buildSimWorld assembles the shared read-only surfaces for a validated,
// normalised config.
func buildSimWorld(cfg *SimConfig) (*simWorld, error) {
	w := &simWorld{tables: cfg.genTables()}
	if len(cfg.MachineGens) > 0 {
		w.geoms = make([]genGeom, len(cfg.MachineGens))
		w.genCum = make([]int, len(cfg.MachineGens))
		total := 0
		for i, g := range cfg.MachineGens {
			thr, ctxs := g.geometry(cfg)
			w.geoms[i] = genGeom{threads: thr, contexts: ctxs}
			total += g.Count
			w.genCum[i] = total
		}
	} else {
		w.geoms = []genGeom{{threads: cfg.ThreadsPerServer, contexts: cfg.ContextsPerServer}}
	}
	if cfg.Policy == PolicyIsolation {
		w.levels = cfg.Isol.Levels
	}
	if cfg.SLO != nil {
		nLevels := 1
		if len(w.levels) > 0 {
			nLevels = len(w.levels)
		}
		w.gates = make([][]*sloGate, len(w.tables))
		for gi, t := range w.tables {
			w.gates[gi] = make([]*sloGate, nLevels)
			for li := 0; li < nLevels; li++ {
				scale := 1.0
				if len(w.levels) > 0 {
					scale = w.levels[li].DegScale
				}
				g, err := buildSLOGateScaled(t, cfg.SLO, scale)
				if err != nil {
					return nil, err
				}
				w.gates[gi][li] = g
			}
		}
	}
	if cfg.Drift != nil {
		w.dw = buildDriftWorld(cfg.Table, cfg.SLO, cfg.Drift)
	}
	if cfg.Alloc != "" && cfg.Alloc != "bestfit" {
		p, err := AllocPolicyByName(cfg.Alloc)
		if err != nil {
			return nil, err
		}
		w.alloc = p.Score
	}
	return w, nil
}

// predDegOf reads the predicted victim degradation backing a cell for
// contention-aware allocation scoring, falling back to the QoS complement
// on legacy tables without a degradation surface.
func predDegOf(t *PredTable, cell int) float64 {
	if len(t.PredDeg) > 0 {
		return t.PredDeg[cell]
	}
	return 1 - t.PredQoS[cell]
}
