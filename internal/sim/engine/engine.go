// Package engine implements the cycle-approximate multicore SMT processor
// simulator that substitutes for the paper's real Sandy Bridge / Ivy Bridge
// testbed.
//
// Each core has two hardware contexts that *competitively share* everything
// SMiTe identifies as an SMT interference dimension:
//
//   - the six execution ports (one micro-op per port per cycle, arbitration
//     alternates priority between contexts every cycle),
//   - the front end (4-wide allocation alternates between contexts; a
//     stalled or full context yields its slot, as on real HyperThreading),
//   - the private L1D and L2 caches, the DTLB and the branch predictor,
//
// while all cores share the L3 and a bandwidth-limited memory controller.
// Performance interference between co-located streams therefore *emerges*
// from the same mechanisms the paper measures, rather than being asserted.
//
// Deliberate approximations (documented per DESIGN.md):
//   - Branch mispredictions stall the front end from resolve for the flush
//     penalty instead of squashing in-flight younger uops.
//   - Instruction-cache and ITLB misses are produced by the workload
//     generator (from its code footprint) rather than a simulated L1I.
//   - Stores complete through a store buffer at a fixed latency; their
//     hierarchy side effects (fills, bandwidth) are still modelled.
package engine

import (
	"fmt"
	"math/bits"

	"repro/internal/sim/branch"
	"repro/internal/sim/cache"
	"repro/internal/sim/isa"
	"repro/internal/sim/mem"
	"repro/internal/sim/pmu"
	"repro/internal/sim/tlb"
)

// Stream produces the dynamic micro-op stream of one hardware context.
// Implementations (workload models, Rulers) must be deterministic given
// their construction seed. Next must overwrite all fields it uses; the
// engine passes a zeroed Uop.
type Stream interface {
	Next(u *isa.Uop)
}

// FootprintDeclarer is an optional Stream extension: streams that keep
// byte ranges resident over a long execution declare their sizes (regions
// all start at the stream's address 0 and nest, so only sizes are needed).
// Chip.Prewarm installs qualifying regions directly into the cache
// hierarchy, approximating the steady-state residency that minutes of real
// execution would establish but short simulation windows cannot.
type FootprintDeclarer interface {
	// PrewarmFootprint returns region sizes in bytes, measured from the
	// stream's address 0.
	PrewarmFootprint() []uint64
}

// noDep marks an absent dependency.
const noDep = ^uint64(0)

// robEntry is one in-flight micro-op.
type robEntry struct {
	kind       isa.UopKind
	ports      isa.PortMask
	dep1, dep2 uint64 // absolute sequence numbers, noDep if none
	addr       uint64
	completeAt uint64
	// notReadyUntil caches the earliest cycle this entry's dependencies
	// could be satisfied, so the scheduler skips re-checking them.
	notReadyUntil uint64
	issued        bool
	mispredict    bool
}

// Context is one SMT hardware context: a stream, a private reorder buffer
// and its PMU counters.
type Context struct {
	stream   Stream
	active   bool
	addrBase uint64
	brSalt   uint32

	rob        []robEntry
	robMask    uint64 // len(rob)-1; ROB sizes are powers of two
	head, tail uint64 // absolute sequence numbers; entry i lives at rob[i&robMask]

	fetchStallUntil uint64
	missFree        []uint64 // completion cycles of outstanding L1D misses
	missMin         uint64   // earliest entry in missFree (fast-path skip)
	streams         []uint64 // stream prefetcher: last line id per tracked stream
	streamLRU       []uint64 // last-use stamps for stream replacement
	dtlb            *tlb.TLB // per-context half of the statically partitioned DTLB

	ctr pmu.Counters
}

func (c *Context) entry(seq uint64) *robEntry {
	return &c.rob[seq&c.robMask]
}

// depReady reports whether the dependency at absolute sequence dep has
// produced its result by cycle now.
func (c *Context) depReady(dep, now uint64) bool {
	if dep == noDep || dep < c.head {
		return true // retired (or no dependency)
	}
	e := c.entry(dep)
	return e.issued && e.completeAt <= now
}

// depHint reports whether e's dependencies are satisfied at now; when they
// are not, it returns the earliest future cycle at which a re-check could
// succeed (now+1 if a dependency has not even issued yet).
func (c *Context) depHint(e *robEntry, now uint64) (hint uint64, ready bool) {
	hint = now
	for _, dep := range [2]uint64{e.dep1, e.dep2} {
		if dep == noDep || dep < c.head {
			continue
		}
		d := c.entry(dep)
		if !d.issued {
			if hint < now+1 {
				hint = now + 1
			}
			continue
		}
		if d.completeAt > hint {
			hint = d.completeAt
		}
	}
	return hint, hint <= now
}

// Core is one physical core: two contexts sharing private caches, the DTLB,
// the branch predictor and the execution ports.
type Core struct {
	chip *Chip
	idx  int

	ctxs [2]*Context

	l1d  *cache.Cache
	l2   *cache.Cache
	pred *branch.Predictor
}

// Checker is the narrow verification hook the runtime invariant checker
// (internal/sim/check) implements. The engine nil-checks it once per cycle,
// so simulation without a checker pays a single predictable branch.
//
// OnCycle is called with the chip after a cycle completes — every
// CheckInterval cycles and once more when a Run window ends (the retire
// barrier) — and returns a structured error describing the first invariant
// violation found, or nil. OnReset is called whenever counter baselines
// move (Assign, ResetCounters) so the checker can re-snapshot.
type Checker interface {
	OnCycle(c *Chip) error
	OnReset(c *Chip)
}

// Chip is the full simulated processor.
// It is not safe for concurrent use; run independent experiments on
// independent Chips.
type Chip struct {
	cfg   isa.Config
	cores []*Core
	l3    *cache.Cache
	memc  *mem.Controller
	cycle uint64

	checker       Checker
	checkInterval uint64
	checkErr      error
}

// New builds a chip for the given configuration. It returns an error if the
// configuration is invalid.
func New(cfg isa.Config) (*Chip, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Chip{
		cfg:  cfg,
		l3:   cache.New("L3", cfg.L3),
		memc: mem.New(cfg.MemBaseLatency, cfg.MemServiceInterval),
	}
	for i := 0; i < cfg.Cores; i++ {
		co := &Core{
			chip: c,
			idx:  i,
			l1d:  cache.New(fmt.Sprintf("core%d.L1D", i), cfg.L1D),
			l2:   cache.New(fmt.Sprintf("core%d.L2", i), cfg.L2),
			pred: branch.New(cfg.BranchPredictorEntries),
		}
		for k := range co.ctxs {
			gid := i*cfg.ContextsPerCore + k
			co.ctxs[k] = &Context{
				rob:      make([]robEntry, cfg.ROBSize),
				robMask:  uint64(cfg.ROBSize - 1),
				addrBase: (uint64(gid) + 1) << 44,
				brSalt:   uint32(gid+1) * 0x9E3779B9,
				missFree: make([]uint64, 0, cfg.MSHRsPerContext),
				// The DTLB is statically partitioned between the two
				// hardware contexts, as several per-thread front-end
				// structures are on real SMT parts; this keeps TLB reach
				// identical between solo and co-located runs.
				dtlb: tlb.New(cfg.DTLBEntries/cfg.ContextsPerCore, cfg.PageBytes),
			}
			if cfg.StreamPrefetcher {
				ns := cfg.PrefetchStreams
				if ns < 1 {
					ns = 4
				}
				co.ctxs[k].streams = make([]uint64, ns)
				co.ctxs[k].streamLRU = make([]uint64, ns)
				for i := range co.ctxs[k].streams {
					co.ctxs[k].streams[i] = ^uint64(0)
				}
			}
		}
		c.cores = append(c.cores, co)
	}
	return c, nil
}

// MustNew is New but panics on error; convenient for tests and internal
// callers that pass stock configurations.
func MustNew(cfg isa.Config) *Chip {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the chip's configuration.
func (c *Chip) Config() isa.Config { return c.cfg }

// Cycle returns the current simulation cycle.
func (c *Chip) Cycle() uint64 { return c.cycle }

// SetChecker attaches (or, with nil, detaches) a runtime invariant checker.
// OnCycle fires every interval cycles (0 means every 1024) and at the end
// of each Run window; the first violation is latched and readable via
// CheckErr. Attaching re-baselines the checker immediately.
func (c *Chip) SetChecker(ch Checker, interval uint64) {
	c.checker = ch
	if interval == 0 {
		interval = 1024
	}
	c.checkInterval = interval
	c.checkErr = nil
	if ch != nil {
		ch.OnReset(c)
	}
}

// CheckErr returns the first invariant violation the attached checker has
// reported (nil when no checker is attached or no violation occurred).
func (c *Chip) CheckErr() error { return c.checkErr }

// Progress returns a context's absolute pipeline progress: micro-ops
// allocated (fetched) into and retired from its ROB since the last Assign.
// The invariant checker uses it for uop-conservation accounting.
func (c *Chip) Progress(core, ctx int) (fetched, retired uint64) {
	x := c.cores[core].ctxs[ctx]
	return x.tail, x.head
}

// ContextActive reports whether a hardware context has a stream assigned.
func (c *Chip) ContextActive(core, ctx int) bool {
	return c.cores[core].ctxs[ctx].active
}

// CorruptCounterForTest deliberately injects retired-instruction counter
// drift into a context — the kind of silent accounting bug the verification
// layer exists to catch. It is exported only so the checker's tests can
// prove a violation is detected; never call it outside tests.
func (c *Chip) CorruptCounterForTest(core, ctx int, delta int64) {
	c.cores[core].ctxs[ctx].ctr.Instructions += uint64(delta)
}

// Assign places a stream on the given hardware context. Passing a nil
// stream deactivates the context. Assign resets the context's pipeline
// state and counters but leaves shared state (caches, predictor) warm.
func (c *Chip) Assign(core, ctx int, s Stream) {
	if core < 0 || core >= len(c.cores) || ctx < 0 || ctx >= c.cfg.ContextsPerCore {
		panic(fmt.Sprintf("engine: Assign(%d,%d) out of range for %d cores × %d contexts", core, ctx, len(c.cores), c.cfg.ContextsPerCore))
	}
	x := c.cores[core].ctxs[ctx]
	x.stream = s
	x.active = s != nil
	x.head, x.tail = 0, 0
	x.fetchStallUntil = 0
	x.missFree = x.missFree[:0]
	x.missMin = ^uint64(0)
	for i := range x.streams {
		x.streams[i] = ^uint64(0)
		x.streamLRU[i] = 0
	}
	x.ctr = pmu.Counters{}
	if c.checker != nil {
		c.checker.OnReset(c)
	}
}

// Counters returns a snapshot of the context's cumulative PMU counters.
func (c *Chip) Counters(core, ctx int) pmu.Counters {
	return c.cores[core].ctxs[ctx].ctr
}

// ResetCounters zeroes every context's PMU counters (and the shared
// structures' statistics), marking the start of a measurement window while
// keeping all microarchitectural state warm.
func (c *Chip) ResetCounters() {
	for _, co := range c.cores {
		for _, x := range co.ctxs {
			x.ctr = pmu.Counters{}
		}
		co.l1d.ResetStats()
		co.l2.ResetStats()
		co.pred.ResetStats()
		for _, x := range co.ctxs {
			x.dtlb.ResetStats()
		}
	}
	c.l3.ResetStats()
	c.memc.ResetStats()
	if c.checker != nil {
		c.checker.OnReset(c)
	}
}

// L3 exposes the shared cache for tests and occupancy inspection.
func (c *Chip) L3() *cache.Cache { return c.l3 }

// Memory exposes the memory controller statistics.
func (c *Chip) Memory() *mem.Controller { return c.memc }

// CoreL1D exposes a core's private L1D (tests, occupancy inspection).
func (c *Chip) CoreL1D(core int) *cache.Cache { return c.cores[core].l1d }

// CoreL2 exposes a core's private L2.
func (c *Chip) CoreL2(core int) *cache.Cache { return c.cores[core].l2 }

// Prewarm functionally executes n micro-ops from every active context's
// stream, round-robin in small chunks, installing data footprints into the
// TLBs and cache hierarchy without advancing simulated time or touching the
// memory controller. It approximates the cache state a long-running
// co-location would have reached, which matters for working sets (multi-MiB
// warm regions) that timed warm-up windows cannot touch often enough.
// Counter pollution is removed by the ResetCounters call that starts every
// measurement window.
func (c *Chip) Prewarm(n int) {
	c.prewarmFootprints()
	const chunk = 64
	var u isa.Uop
	for done := 0; done < n; done += chunk {
		for _, co := range c.cores {
			for _, x := range co.ctxs {
				if x == nil || !x.active {
					continue
				}
				for i := 0; i < chunk; i++ {
					u = isa.Uop{}
					x.stream.Next(&u)
					switch u.Kind {
					case isa.Branch:
						// Train the predictor in uop time: large branch
						// working sets take hundreds of thousands of
						// cycles to converge in timed execution.
						co.pred.Lookup(u.BrTag*2654435761+x.brSalt, u.Taken)
					case isa.Load, isa.Store:
						addr := x.addrBase | u.Addr
						x.dtlb.Access(addr)
						if co.l1d.Access(addr, true) {
							continue
						}
						if co.l2.Access(addr, true) {
							continue
						}
						c.l3.Access(addr, true)
					}
				}
			}
		}
	}
}

// prewarmFootprints installs each active context's declared resident
// regions into its core's caches and the L3. A region qualifies when it
// fits within twice the L3 capacity (larger regions have no steady-state
// residency to model). Regions nest at address 0, so only the largest
// qualifying size is walked. The job on context 0 is installed before its
// sibling on context 1, matching the steady state in which the
// higher-rate co-runner (a Ruler) owns contended lines.
func (c *Chip) prewarmFootprints() {
	line := uint64(c.cfg.L3.LineBytes)
	type job struct {
		co   *Core
		x    *Context
		size uint64
		pos  uint64
	}
	var jobs []job
	for _, co := range c.cores {
		for _, x := range co.ctxs {
			if x == nil || !x.active {
				continue
			}
			fd, ok := x.stream.(FootprintDeclarer)
			if !ok {
				continue
			}
			size := uint64(0)
			for _, s := range fd.PrewarmFootprint() {
				if s > size {
					size = s
				}
			}
			if size > 0 {
				jobs = append(jobs, job{co: co, x: x, size: size})
			}
		}
	}
	if len(jobs) == 0 {
		return
	}
	// Allocate installation budgets max-min fairly within the L3 capacity:
	// contexts with small resident sets install them fully (a small,
	// frequently re-touched working set retains near-full occupancy at
	// steady state), while larger footprints split the remaining capacity.
	// Flooding the cache with one context's huge footprint would start the
	// measurement window from a state no steady state resembles.
	for j := range jobs {
		if max := uint64(c.cfg.L3.SizeBytes); jobs[j].size > max {
			jobs[j].size = max
		}
	}
	remaining := uint64(c.cfg.L3.SizeBytes)
	unmet := len(jobs)
	// Iteratively satisfy the smallest demands.
	done := make([]bool, len(jobs))
	for unmet > 0 {
		share := remaining / uint64(unmet)
		progressed := false
		for j := range jobs {
			if !done[j] && jobs[j].size <= share {
				done[j] = true
				remaining -= jobs[j].size
				unmet--
				progressed = true
			}
		}
		if !progressed {
			for j := range jobs {
				if !done[j] {
					jobs[j].size = share
					done[j] = true
					remaining -= share
					unmet--
				}
			}
		}
	}
	// Interleave installs across contexts in chunks so shared-cache LRU
	// starts from a fair mixture rather than last-writer-wins.
	const chunk = 16
	for {
		busy := false
		for j := range jobs {
			jb := &jobs[j]
			for n := uint64(0); n < chunk && jb.pos < jb.size; n++ {
				a := jb.x.addrBase | jb.pos
				jb.x.dtlb.Access(a)
				if !jb.co.l1d.Access(a, true) {
					if !jb.co.l2.Access(a, true) {
						c.l3.Access(a, true)
					}
				}
				jb.pos += line
			}
			if jb.pos < jb.size {
				busy = true
			}
		}
		if !busy {
			return
		}
	}
}

// Run advances the chip by the given number of cycles. When a checker is
// attached it is consulted every checkInterval cycles and once at the end
// of the window; the first violation is latched (see CheckErr).
func (c *Chip) Run(cycles uint64) {
	for n := uint64(0); n < cycles; n++ {
		now := c.cycle
		for _, co := range c.cores {
			co.step(now)
		}
		c.cycle++
		for _, co := range c.cores {
			for _, x := range co.ctxs {
				if x.active {
					x.ctr.Cycles++
				}
			}
		}
		if c.checker != nil && c.cycle%c.checkInterval == 0 {
			c.runCheck()
		}
	}
	if c.checker != nil {
		c.runCheck()
	}
}

// runCheck consults the attached checker, latching its first violation.
func (c *Chip) runCheck() {
	if err := c.checker.OnCycle(c); err != nil && c.checkErr == nil {
		c.checkErr = err
	}
}

// step advances one core by one cycle: expire MSHRs, retire, issue, fetch.
func (co *Core) step(now uint64) {
	anyActive := false
	for _, x := range co.ctxs {
		if x == nil || !x.active {
			continue
		}
		anyActive = true
		x.expireMisses(now)
		x.retire(now, co.chip.cfg.RetireWidth)
	}
	if !anyActive {
		return
	}
	co.issue(now)
	co.fetch(now)
}

func (x *Context) expireMisses(now uint64) {
	if len(x.missFree) == 0 || x.missMin > now {
		return
	}
	out := x.missFree[:0]
	earliest := ^uint64(0)
	for _, t := range x.missFree {
		if t > now {
			out = append(out, t)
			if t < earliest {
				earliest = t
			}
		}
	}
	x.missFree = out
	x.missMin = earliest
}

func (x *Context) retire(now uint64, width int) {
	for n := 0; n < width && x.head < x.tail; n++ {
		e := x.entry(x.head)
		if !e.issued || e.completeAt > now {
			return
		}
		x.head++
		x.ctr.Instructions++
	}
}

// issue performs the per-cycle dispatch: context priority alternates every
// cycle; the priority context's oldest ready micro-ops claim free ports
// first (each port accepts one micro-op per cycle), then the sibling fills
// what remains. Under saturation each context therefore receives half of a
// contended port's slots, which is the competitive sharing SMiTe measures.
func (co *Core) issue(now uint64) {
	free := isa.PortMask(1<<isa.NumPorts - 1)
	pri := int(now+uint64(co.idx)) & 1
	for t := 0; t < 2 && free != 0; t++ {
		x := co.ctxs[(pri+t)&1]
		if x == nil || !x.active {
			continue
		}
		free = co.issueFrom(x, free, now)
	}
}

// issueFrom scans x's oldest IssueScanDepth ROB entries (the reservation-
// station view) oldest-first, dispatching each ready micro-op to the lowest
// free port in its mask. It returns the ports still free.
func (co *Core) issueFrom(x *Context, free isa.PortMask, now uint64) isa.PortMask {
	cfg := &co.chip.cfg
	mshrFull := len(x.missFree) >= cfg.MSHRsPerContext
	limit := x.head + uint64(cfg.IssueScanDepth)
	if limit > x.tail {
		limit = x.tail
	}
	for s := x.head; s < limit && free != 0; s++ {
		e := x.entry(s)
		if e.issued || e.notReadyUntil > now {
			continue
		}
		avail := e.ports & free
		if avail == 0 {
			continue
		}
		if mshrFull && (e.kind == isa.Load || e.kind == isa.Store) {
			continue
		}
		if hint, ready := x.depHint(e, now); !ready {
			e.notReadyUntil = hint
			continue
		}
		p := isa.Port(bits.TrailingZeros8(uint8(avail)))
		co.execute(x, e, p, now)
		free &^= 1 << p
	}
	return free
}

// execute dispatches e on port p at cycle now, computing its completion.
func (co *Core) execute(x *Context, e *robEntry, p isa.Port, now uint64) {
	cfg := &co.chip.cfg
	e.issued = true
	x.ctr.PortUops[p]++
	switch e.kind {
	case isa.Load:
		lat, missed := co.loadLatency(x, e.addr, now)
		e.completeAt = now + lat
		if missed {
			x.missFree = append(x.missFree, e.completeAt)
			if e.completeAt < x.missMin || len(x.missFree) == 1 {
				x.missMin = e.completeAt
			}
		}
	case isa.Store:
		fillAt, missed := co.storeAccess(x, e.addr, now)
		// The store itself completes through the store buffer, but a
		// missing store occupies an MSHR until its fill returns — that
		// backpressure bounds a store stream's memory-bandwidth demand.
		e.completeAt = now + cfg.StoreLatency
		if missed {
			x.missFree = append(x.missFree, fillAt)
			if fillAt < x.missMin || len(x.missFree) == 1 {
				x.missMin = fillAt
			}
		}
	case isa.Branch:
		e.completeAt = now + cfg.Latency[isa.Branch]
		if e.mispredict {
			until := e.completeAt + cfg.MispredictPenalty
			if until > x.fetchStallUntil {
				x.fetchStallUntil = until
			}
		}
	default:
		e.completeAt = now + cfg.Latency[e.kind]
	}
}

// streamHit reports whether line continues a tracked ascending stream of
// context x, training the prefetcher either way.
func (x *Context) streamHit(line, now uint64) bool {
	if x.streams == nil {
		return false
	}
	for i, last := range x.streams {
		if line == last+1 {
			x.streams[i] = line
			x.streamLRU[i] = now
			return true
		}
	}
	// Allocate the least-recently-used stream slot.
	victim, oldest := 0, ^uint64(0)
	for i, st := range x.streamLRU {
		if x.streams[i] == ^uint64(0) {
			victim = i
			break
		}
		if st < oldest {
			victim, oldest = i, st
		}
	}
	x.streams[victim] = line
	x.streamLRU[victim] = now
	return false
}

// loadLatency walks the hierarchy for a load, returning the load-to-use
// latency and whether it missed the L1D (occupying an MSHR).
func (co *Core) loadLatency(x *Context, addr uint64, now uint64) (lat uint64, missedL1 bool) {
	cfg := &co.chip.cfg
	x.ctr.Loads++
	if !x.dtlb.Access(addr) {
		lat += cfg.DTLBMissPenalty
		x.ctr.DTLBLoadMisses++
	}
	if co.l1d.Access(addr, true) {
		x.ctr.L1DHits++
		return lat + cfg.L1D.LatencyCycles, false
	}
	x.ctr.L1DMisses++
	streamed := x.streamHit(addr>>6, now)
	if co.l2.Access(addr, true) {
		x.ctr.L2Hits++
		return lat + cfg.L2.LatencyCycles, true
	}
	x.ctr.L2Misses++
	if co.chip.l3.Access(addr, true) {
		x.ctr.L3Hits++
		return lat + cfg.L3.LatencyCycles, true
	}
	x.ctr.L3Misses++
	x.ctr.MemAccesses++
	complete := co.chip.memc.Request(now)
	if streamed {
		// The stream prefetcher fetched this line ahead of the demand:
		// the DRAM base latency is hidden, but bandwidth queueing is not,
		// and a prefetched DRAM line is never faster than an L3 hit.
		l := cfg.L2.LatencyCycles + (complete - now - cfg.MemBaseLatency)
		if l < cfg.L3.LatencyCycles {
			l = cfg.L3.LatencyCycles
		}
		return lat + l, true
	}
	return lat + cfg.L3.LatencyCycles + (complete - now), true
}

// storeAccess performs a store's hierarchy side effects (write-allocate
// fills, DRAM bandwidth consumption), returning when the fill completes and
// whether the L1 missed (occupying an MSHR until fillAt).
func (co *Core) storeAccess(x *Context, addr uint64, now uint64) (fillAt uint64, missedL1 bool) {
	cfg := &co.chip.cfg
	x.ctr.Stores++
	if !x.dtlb.Access(addr) {
		x.ctr.DTLBStoreMisses++
	}
	if co.l1d.Access(addr, true) {
		x.ctr.L1DHits++
		return now, false
	}
	x.ctr.L1DMisses++
	streamed := x.streamHit(addr>>6, now)
	if co.l2.Access(addr, true) {
		x.ctr.L2Hits++
		return now + cfg.L2.LatencyCycles, true
	}
	x.ctr.L2Misses++
	if co.chip.l3.Access(addr, true) {
		x.ctr.L3Hits++
		return now + cfg.L3.LatencyCycles, true
	}
	x.ctr.L3Misses++
	x.ctr.MemAccesses++
	complete := co.chip.memc.Request(now)
	if streamed {
		l := cfg.L2.LatencyCycles + (complete - now - cfg.MemBaseLatency)
		if l < cfg.L3.LatencyCycles {
			l = cfg.L3.LatencyCycles
		}
		return now + l, true
	}
	return complete, true
}

// fetch allocates up to FetchWidth micro-ops per cycle. Front-end priority
// alternates between the contexts each cycle, but the front end is
// work-conserving: allocation slots the primary context cannot use (stall,
// full ROB, idle) flow to its sibling. This mirrors how a tiny
// loop-buffer-resident Ruler on real hardware leaves fetch bandwidth to its
// co-runner, and is what keeps the functional-unit Rulers decoupled from
// the front-end dimension.
func (co *Core) fetch(now uint64) {
	cfg := &co.chip.cfg
	width := cfg.FetchWidth
	first := int(now+uint64(co.idx)) & 1
	for t := 0; t < 2 && width > 0; t++ {
		x := co.ctxs[(first+t)&1]
		if x == nil || !x.active || x.fetchStallUntil > now {
			continue
		}
		width -= co.fetchInto(x, now, width)
	}
}

// fetchInto allocates up to width micro-ops into x's ROB, returning the
// number allocated.
func (co *Core) fetchInto(x *Context, now uint64, width int) int {
	cfg := &co.chip.cfg
	var u isa.Uop
	for n := 0; n < width; n++ {
		if x.tail-x.head >= uint64(cfg.ROBSize) {
			return n
		}
		u = isa.Uop{}
		x.stream.Next(&u)

		if u.ICacheMiss {
			x.ctr.ICacheMisses++
			until := now + cfg.ICacheMissPenalty
			if until > x.fetchStallUntil {
				x.fetchStallUntil = until
			}
		}
		if u.ITLBMiss {
			x.ctr.ITLBMisses++
			until := now + cfg.ITLBMissPenalty
			if until > x.fetchStallUntil {
				x.fetchStallUntil = until
			}
		}

		seq := x.tail
		e := x.entry(seq)
		*e = robEntry{kind: u.Kind, ports: cfg.PortMap[u.Kind], dep1: noDep, dep2: noDep}
		if d := uint64(u.Dep1); d > 0 && d <= seq {
			e.dep1 = seq - d
		}
		if d := uint64(u.Dep2); d > 0 && d <= seq {
			e.dep2 = seq - d
		}
		switch u.Kind {
		case isa.Nop:
			// Nops consume front-end and ROB bandwidth but no port.
			e.issued = true
			e.completeAt = now
		case isa.Load, isa.Store:
			e.addr = x.addrBase | u.Addr
		case isa.Branch:
			x.ctr.Branches++
			if !co.pred.Lookup(u.BrTag*2654435761+x.brSalt, u.Taken) {
				e.mispredict = true
				x.ctr.BranchMispredicts++
			}
		}
		x.tail++

		if x.fetchStallUntil > now {
			return n + 1 // front-end stall takes effect immediately
		}
	}
	return width
}
