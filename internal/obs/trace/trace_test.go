package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a clock that advances a fixed step per call.
func fakeClock(step time.Duration) func() time.Duration {
	var mu sync.Mutex
	var now time.Duration
	return func() time.Duration {
		mu.Lock()
		defer mu.Unlock()
		now += step
		return now
	}
}

func TestDisabledIsNoop(t *testing.T) {
	ctx := context.Background()
	sctx, span := Start(ctx, "anything", String("k", "v"))
	if span != nil {
		t.Fatalf("Start without tracer returned non-nil span")
	}
	if sctx != ctx {
		t.Fatalf("Start without tracer changed the context")
	}
	// All span methods must be nil-safe.
	span.SetAttr(Int("n", 1))
	span.End()
	if got := WithTrack(ctx, "w"); got != ctx {
		t.Fatalf("WithTrack without tracer changed the context")
	}
	if FromContext(ctx) != nil {
		t.Fatalf("FromContext on bare context should be nil")
	}
}

func TestSpanNestingAndAttrs(t *testing.T) {
	tr := New(WithClock(fakeClock(time.Millisecond)))
	ctx := NewContext(context.Background(), tr)

	pctx, parent := Start(ctx, "parent", String("stage", "outer"))
	cctx, child := Start(pctx, "child")
	child.SetAttr(Int("i", 7), Uint64("cycles", 16384), Bool("hit", true))
	_, grand := Start(cctx, "grandchild")
	grand.End()
	child.End()
	parent.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Spans() sorts by start time: parent, child, grandchild.
	if spans[0].Name != "parent" || spans[1].Name != "child" || spans[2].Name != "grandchild" {
		t.Fatalf("unexpected span order: %q %q %q", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	if spans[1].Parent != spans[0].ID {
		t.Errorf("child parent = %d, want %d", spans[1].Parent, spans[0].ID)
	}
	if spans[2].Parent != spans[1].ID {
		t.Errorf("grandchild parent = %d, want %d", spans[2].Parent, spans[1].ID)
	}
	if spans[0].End <= spans[0].Start {
		t.Errorf("parent span has non-positive duration: %v..%v", spans[0].Start, spans[0].End)
	}
	want := []Attr{{"i", "7"}, {"cycles", "16384"}, {"hit", "true"}}
	if len(spans[1].Attrs) != len(want) {
		t.Fatalf("child attrs = %v, want %v", spans[1].Attrs, want)
	}
	for i, a := range want {
		if spans[1].Attrs[i] != a {
			t.Errorf("attr[%d] = %v, want %v", i, spans[1].Attrs[i], a)
		}
	}
}

func TestTracks(t *testing.T) {
	tr := New(WithClock(fakeClock(time.Microsecond)))
	ctx := NewContext(context.Background(), tr)

	w0 := WithTrack(ctx, "worker-0")
	w1 := WithTrack(ctx, "worker-1")
	_, a := Start(w0, "task-a")
	a.End()
	_, b := Start(w1, "task-b")
	b.End()
	_, m := Start(ctx, "on-main")
	m.End()

	byName := map[string]SpanRecord{}
	for _, s := range tr.Spans() {
		byName[s.Name] = s
	}
	if got := tr.TrackName(byName["task-a"].Track); got != "worker-0" {
		t.Errorf("task-a track = %q, want worker-0", got)
	}
	if got := tr.TrackName(byName["task-b"].Track); got != "worker-1" {
		t.Errorf("task-b track = %q, want worker-1", got)
	}
	if byName["on-main"].Track != 0 {
		t.Errorf("on-main track = %d, want 0", byName["on-main"].Track)
	}
	if tr.TrackName(0) != "main" {
		t.Errorf("TrackName(0) = %q, want main", tr.TrackName(0))
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New()
	ctx := NewContext(context.Background(), tr)
	var wg sync.WaitGroup
	const workers, perWorker = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wctx := WithTrack(ctx, "w")
			for i := 0; i < perWorker; i++ {
				_, s := Start(wctx, "op", Int("i", i))
				s.End()
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Len(); got != workers*perWorker {
		t.Fatalf("Len = %d, want %d", got, workers*perWorker)
	}
}

func TestWriteChrome(t *testing.T) {
	tr := New(WithClock(fakeClock(10 * time.Microsecond)))
	ctx := NewContext(context.Background(), tr)
	pctx, parent := Start(ctx, "outer", String("kind", "test"))
	_, inner := Start(pctx, "inner")
	inner.End()
	parent.End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var env struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	var meta, complete int
	for _, e := range env.TraceEvents {
		switch e["ph"] {
		case "M":
			meta++
		case "X":
			complete++
			if e["name"] == "inner" {
				args := e["args"].(map[string]any)
				if args["parent"] != "span-1" {
					t.Errorf("inner parent arg = %v, want span-1", args["parent"])
				}
			}
		}
	}
	if meta != 1 || complete != 2 {
		t.Fatalf("got %d metadata and %d complete events, want 1 and 2", meta, complete)
	}
	if !strings.Contains(buf.String(), `"name":"outer"`) {
		t.Errorf("output missing outer span: %s", buf.String())
	}
}

// TestWriteChromeDeterministic pins that a fixed clock yields byte-identical
// exports across runs, and that spans that finish out of start order are
// still exported sorted by start time.
func TestWriteChromeDeterministic(t *testing.T) {
	render := func() string {
		tr := New(WithClock(fakeClock(time.Microsecond)))
		ctx := NewContext(context.Background(), tr)
		_, a := Start(ctx, "a")
		_, b := Start(ctx, "b")
		b.End() // finish out of start order on purpose
		a.End()
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first, second := render(), render()
	if first != second {
		t.Fatalf("export is not deterministic:\n%s\nvs\n%s", first, second)
	}
	if ai, bi := strings.Index(first, `"name":"a"`), strings.Index(first, `"name":"b"`); ai == -1 || bi == -1 || ai > bi {
		t.Fatalf("spans not sorted by start time in export:\n%s", first)
	}
}
