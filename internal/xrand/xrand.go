// Package xrand provides small, fast, deterministic random number
// generators used throughout the simulator and the queueing models.
//
// The simulator must be exactly reproducible: the same seed always yields
// the same instruction stream, the same addresses and the same counters.
// math/rand's global state is unsuitable for that, and the simulator sits on
// hot paths where allocation-free generation matters, so we keep a tiny
// xorshift64* implementation here together with the distribution helpers
// (exponential, Poisson, geometric) the workload generators and the M/M/1
// simulator need.
package xrand

import "math"

// Rand is a xorshift64* pseudo-random generator. The zero value is invalid;
// construct with New. Rand is not safe for concurrent use; give each
// goroutine its own instance.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. A zero seed is replaced with a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state. Zero is mapped to a fixed constant.
func (r *Rand) Seed(seed uint64) {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	// Scramble the seed with splitmix64 so that nearby seeds produce
	// decorrelated streams.
	z := seed + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	r.state = z
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *Rand) Uint32() uint32 {
	return uint32(r.Uint64() >> 32)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n) via Fisher-Yates.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Exp returns an exponentially distributed value with rate lambda
// (mean 1/lambda). It panics if lambda <= 0.
func (r *Rand) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("xrand: Exp with non-positive rate")
	}
	u := r.Float64()
	// Guard against log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1-u) / lambda
}

// Geometric returns a geometrically distributed integer >= 1 with the given
// mean. A mean <= 1 always returns 1.
func (r *Rand) Geometric(mean float64) int {
	return NewGeometric(mean).Sample(r)
}

// GeometricSampler draws geometric integers >= 1 with a fixed mean. It
// hoists the log(1-p) constant that Rand.Geometric recomputes per call;
// callers sampling the same mean millions of times (the workload
// generators' dependency distances) construct one sampler up front.
// Sample is bit-identical to Rand.Geometric for the same Rand state.
type GeometricSampler struct {
	mean  float64
	denom float64 // math.Log(1 - 1/mean), valid when mean > 1
}

// NewGeometric builds a sampler with the given mean.
func NewGeometric(mean float64) GeometricSampler {
	g := GeometricSampler{mean: mean}
	if mean > 1 {
		g.denom = math.Log(1 - 1/mean)
	}
	return g
}

// Sample draws the next value from r.
func (g GeometricSampler) Sample(r *Rand) int {
	if g.mean <= 1 {
		return 1
	}
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	k := 1 + int(math.Log(1-u)/g.denom)
	if k < 1 {
		k = 1
	}
	return k
}

// Poisson returns a Poisson-distributed integer with the given mean using
// Knuth's method for small means and a normal approximation for large ones.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		// Normal approximation with continuity correction.
		n := int(mean + math.Sqrt(mean)*r.Norm() + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Norm returns a standard normal variate using the Box-Muller transform.
func (r *Rand) Norm() float64 {
	u1 := r.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LFSR is the 32-bit linear-feedback shift register the paper's memory
// Rulers use as a lightweight random number generator (Figure 9(e)):
//
//	#define MASK 0xd0000001u
//	#define RAND (lfsr = (lfsr >> 1) ^ (unsigned int)(0 - (lfsr & 1u) & MASK))
//
// We reproduce it bit-for-bit so the Ruler address streams match the paper's
// construction.
type LFSR struct {
	state uint32
}

// NewLFSR returns an LFSR seeded with seed (zero mapped to 1, since an LFSR
// state of zero is a fixed point).
func NewLFSR(seed uint32) *LFSR {
	if seed == 0 {
		seed = 1
	}
	return &LFSR{state: seed}
}

// Next advances the register and returns its new state.
func (l *LFSR) Next() uint32 {
	const mask = 0xd0000001
	l.state = (l.state >> 1) ^ ((0 - (l.state & 1)) & mask)
	return l.state
}
