package qosd

import (
	"context"
	"math"
	"testing"

	"repro/internal/surrogate"
	"repro/smite"
)

// testSurrogate builds a hand-made surrogate set whose curves reproduce
// the testChars characterizations exactly at full intensity (Coef[0] = the
// characterization value, so At(1) = value), each with the given recorded
// per-dimension error. Only web-search and 429.mcf get models; 444.namd is
// deliberately left out to exercise the engine fallback.
func testSurrogate(maxErr float64) *smite.Surrogate {
	chars := testChars()
	set := &smite.Surrogate{Machine: "test", Models: map[string]*smite.SurrogateModel{}}
	for _, ch := range chars[:2] {
		m := &smite.SurrogateModel{App: ch.App, SoloIPC: ch.SoloIPC}
		for d := range m.Sen {
			m.Sen[d] = surrogate.Curve{Coef: [3]float64{ch.Sen[d]}, MaxAbsErr: maxErr}
			m.Con[d] = surrogate.Curve{Coef: [3]float64{ch.Con[d]}, MaxAbsErr: maxErr}
		}
		set.Models[ch.App] = m
	}
	return set
}

func TestPredictSurrogateTier(t *testing.T) {
	set := testSurrogate(0.001)
	s, c := newTestServer(t, Config{Surrogate: set})

	got, err := c.Predict(context.Background(), PredictRequest{Victim: "web-search", Aggressor: "429.mcf"})
	if err != nil {
		t.Fatal(err)
	}
	if got.Tier != TierSurrogate {
		t.Fatalf("tier = %q, want %q", got.Tier, TierSurrogate)
	}
	want, err := testModel().PredictSurrogate(set, "web-search", "429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	if got.Degradation != want.Degradation {
		t.Errorf("served degradation %v != in-process surrogate %v", got.Degradation, want.Degradation)
	}
	if got.ErrorBound != want.Bound || got.ErrorBound <= 0 {
		t.Errorf("served bound %v, want %v (> 0)", got.ErrorBound, want.Bound)
	}
	// The curves reproduce the registry characterizations exactly, so the
	// surrogate answer must agree with the engine tier bit for bit.
	chars := testChars()
	if eng := testModel().PredictPair(chars[0], chars[1]); got.Degradation != eng {
		t.Errorf("surrogate answer %v != engine answer %v for identical features", got.Degradation, eng)
	}
	// Surrogate answers are microsecond-cheap and must not populate the
	// prediction memo.
	if st := s.memo.Stats(); st.Entries != 0 || st.Misses != 0 {
		t.Errorf("surrogate answer touched the memo: %+v", st)
	}
}

func TestPredictSurrogateFallsBackToEngine(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		req  PredictRequest
	}{
		{"partial occupancy", Config{Surrogate: testSurrogate(0.001)},
			PredictRequest{Victim: "web-search", Aggressor: "429.mcf", Instances: 2, Threads: 6}},
		{"victim not fitted", Config{Surrogate: testSurrogate(0.001)},
			PredictRequest{Victim: "444.namd", Aggressor: "429.mcf"}},
		{"aggressor not fitted", Config{Surrogate: testSurrogate(0.001)},
			PredictRequest{Victim: "web-search", Aggressor: "444.namd"}},
		{"bound over threshold", Config{Surrogate: testSurrogate(0.001), SurrogateThreshold: 1e-12},
			PredictRequest{Victim: "web-search", Aggressor: "429.mcf"}},
		{"no surrogate configured", Config{},
			PredictRequest{Victim: "web-search", Aggressor: "429.mcf"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, c := newTestServer(t, tc.cfg)
			got, err := c.Predict(context.Background(), tc.req)
			if err != nil {
				t.Fatal(err)
			}
			if got.Tier != TierEngine {
				t.Errorf("tier = %q, want %q", got.Tier, TierEngine)
			}
			if got.ErrorBound != 0 {
				t.Errorf("engine tier carried an error bound: %v", got.ErrorBound)
			}
			if st := s.memo.Stats(); st.Entries != 1 {
				t.Errorf("engine tier did not memoize: %+v", st)
			}
		})
	}
}

// TestColocateAndBatchUseSurrogate pins that the decision endpoints share
// the tiered core: with exact curves the degradations match the engine
// numbers bit for bit, and the memo stays cold because every eligible pair
// was answered by the surrogate.
func TestColocateAndBatchUseSurrogate(t *testing.T) {
	set := testSurrogate(0.001)
	s, c := newTestServer(t, Config{Surrogate: set})
	chars := testChars()
	m := testModel()

	col, err := c.Colocate(context.Background(), ColocateRequest{
		Victim: "web-search", Aggressor: "429.mcf", QoSTarget: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := m.PredictPair(chars[0], chars[1]); col.Degradation != want {
		t.Errorf("colocate degradation %v != %v", col.Degradation, want)
	}

	batch, err := c.Batch(context.Background(), BatchRequest{
		Victim:     "web-search",
		Candidates: []BatchCandidate{{Aggressor: "429.mcf"}, {Aggressor: "444.namd"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := m.PredictPair(chars[0], chars[1]); batch.Results[0].Degradation != want {
		t.Errorf("batch[0] degradation %v != %v", batch.Results[0].Degradation, want)
	}
	// 444.namd has no fitted model, so exactly that candidate hit the
	// engine tier and the memo.
	if st := s.memo.Stats(); st.Entries != 1 {
		t.Errorf("expected exactly the unfitted candidate in the memo: %+v", st)
	}
}

// TestSurrogateThresholdBoundary pins the tier-selection comparison at
// its edges: a bound exactly equal to the threshold is still served from
// the surrogate tier (the comparison is <=, not <), and an explicitly
// negative threshold disables the tier outright rather than being
// silently reset to the default.
func TestSurrogateThresholdBoundary(t *testing.T) {
	set := testSurrogate(0.001)
	exact, err := testModel().PredictSurrogate(set, "web-search", "429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	if exact.Bound <= 0 {
		t.Fatalf("test surrogate has no error bound to pin (%v)", exact.Bound)
	}

	cases := []struct {
		name      string
		threshold float64
		wantTier  string
	}{
		{"bound exactly at threshold", exact.Bound, TierSurrogate},
		{"bound just over threshold", math.Nextafter(exact.Bound, 0), TierEngine},
		{"negative threshold disables the tier", -1, TierEngine},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, c := newTestServer(t, Config{Surrogate: set, SurrogateThreshold: tc.threshold})
			got, err := c.Predict(context.Background(), PredictRequest{Victim: "web-search", Aggressor: "429.mcf"})
			if err != nil {
				t.Fatal(err)
			}
			if got.Tier != tc.wantTier {
				t.Errorf("threshold %v: tier = %q, want %q", tc.threshold, got.Tier, tc.wantTier)
			}
		})
	}
}
