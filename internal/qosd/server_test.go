package qosd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/smite"
)

// testChars builds hand-made characterizations (no simulator involved, so
// the package tests are fast).
func testChars() []smite.Characterization {
	victim := smite.Characterization{App: "web-search", SoloIPC: 1.2}
	aggr := smite.Characterization{App: "429.mcf", SoloIPC: 0.5}
	quiet := smite.Characterization{App: "444.namd", SoloIPC: 1.8}
	for d := range victim.Sen {
		victim.Sen[d] = 0.05 * float64(d+1)
		aggr.Con[d] = 0.1 * float64(d+1)
		quiet.Con[d] = 0.01
	}
	return []smite.Characterization{victim, aggr, quiet}
}

func testModel() smite.Model {
	var coef [smite.NumDimensions]float64
	for d := range coef {
		coef[d] = 0.2
	}
	return smite.NewModel(coef, 0.01)
}

// newTestServer builds a loaded registry plus a Server and an httptest
// transport around the full middleware stack.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	reg := NewRegistry()
	reg.AddProfiles(testChars())
	reg.SetModel(testModel())
	s := NewServer(reg, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, NewClient(ts.URL, ts.Client())
}

func TestPredictMatchesModelExactly(t *testing.T) {
	_, c := newTestServer(t, Config{})
	chars := testChars()
	m := testModel()

	got, err := c.Predict(context.Background(), PredictRequest{Victim: "web-search", Aggressor: "429.mcf"})
	if err != nil {
		t.Fatal(err)
	}
	// Bit-identical, not approximately equal: encoding/json round-trips
	// float64 exactly, so the served prediction must equal the in-process
	// one to the last bit.
	if want := m.PredictPair(chars[0], chars[1]); got.Degradation != want {
		t.Errorf("served degradation %v != in-process %v", got.Degradation, want)
	}

	part, err := c.Predict(context.Background(), PredictRequest{
		Victim: "web-search", Aggressor: "429.mcf", Instances: 2, Threads: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := m.PredictPartial(chars[0], chars[1], 2, 6); part.Degradation != want {
		t.Errorf("served partial degradation %v != in-process %v", part.Degradation, want)
	}
	if part.Degradation == got.Degradation {
		t.Error("partial occupancy did not change the prediction")
	}
}

func TestPredictValidation(t *testing.T) {
	_, c := newTestServer(t, Config{})
	cases := []struct {
		name     string
		req      PredictRequest
		wantCode string
		wantHTTP int
	}{
		{"missing victim", PredictRequest{Aggressor: "429.mcf"}, CodeInvalidArgument, 400},
		{"missing aggressor", PredictRequest{Victim: "web-search"}, CodeInvalidArgument, 400},
		{"unknown victim", PredictRequest{Victim: "nope", Aggressor: "429.mcf"}, CodeUnknownProfile, 404},
		{"unknown aggressor", PredictRequest{Victim: "web-search", Aggressor: "nope"}, CodeUnknownProfile, 404},
		{"instances without threads", PredictRequest{Victim: "web-search", Aggressor: "429.mcf", Instances: 2}, CodeInvalidArgument, 400},
		{"instances beyond threads", PredictRequest{Victim: "web-search", Aggressor: "429.mcf", Instances: 7, Threads: 6}, CodeInvalidArgument, 400},
		{"zero instances with threads", PredictRequest{Victim: "web-search", Aggressor: "429.mcf", Threads: 6}, CodeInvalidArgument, 400},
		{"negative threads", PredictRequest{Victim: "web-search", Aggressor: "429.mcf", Instances: 1, Threads: -1}, CodeInvalidArgument, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Predict(context.Background(), tc.req)
			var apiErr *APIError
			if !errors.As(err, &apiErr) {
				t.Fatalf("got %v, want *APIError", err)
			}
			if apiErr.Code != tc.wantCode || apiErr.Status != tc.wantHTTP {
				t.Errorf("got %s/%d, want %s/%d", apiErr.Code, apiErr.Status, tc.wantCode, tc.wantHTTP)
			}
		})
	}
}

func TestNoModelReturns503(t *testing.T) {
	reg := NewRegistry()
	reg.AddProfiles(testChars())
	ts := httptest.NewServer(NewServer(reg, Config{}).Handler())
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())

	_, err := c.Predict(context.Background(), PredictRequest{Victim: "web-search", Aggressor: "429.mcf"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != CodeNoModel || apiErr.Status != 503 {
		t.Errorf("got %v, want no_model/503", err)
	}
	h, err := c.Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.ModelLoaded || h.Profiles != 3 {
		t.Errorf("health %+v, want 3 profiles and no model", h)
	}
}

func TestColocateDecision(t *testing.T) {
	_, c := newTestServer(t, Config{})
	chars := testChars()
	m := testModel()
	deg := m.PredictPair(chars[0], chars[1])
	if deg <= 0 || deg >= 1 {
		t.Fatalf("test fixture degradation %v not in (0,1)", deg)
	}

	// A target just below the retained performance is safe; just above, unsafe.
	for _, tc := range []struct {
		target float64
		safe   bool
	}{
		{1 - deg - 1e-9, true},
		{1 - deg + 1e-9, false},
	} {
		got, err := c.Colocate(context.Background(), ColocateRequest{
			Victim: "web-search", Aggressor: "429.mcf", QoSTarget: tc.target,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got.Safe != tc.safe {
			t.Errorf("target %v: safe=%v, want %v (deg %v)", tc.target, got.Safe, tc.safe, got.Degradation)
		}
		if got.QoS != 1-got.Degradation {
			t.Errorf("qos %v != 1-deg %v", got.QoS, 1-got.Degradation)
		}
	}
}

func TestColocateTailLatency(t *testing.T) {
	_, c := newTestServer(t, Config{})
	chars := testChars()
	m := testModel()
	deg := m.PredictPair(chars[0], chars[1])

	// Stable queue: the response carries Equation 6 exactly.
	got, err := c.Colocate(context.Background(), ColocateRequest{
		Victim: "web-search", Aggressor: "429.mcf", QoSTarget: 0.5,
		Queue: &QueueSpec{Mu: 1000, Lambda: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Saturated || got.TailLatency == nil {
		t.Fatalf("stable queue came back saturated: %+v", got)
	}
	want, err := smite.PredictTailLatency(0.90, 1000, 100, deg)
	if err != nil {
		t.Fatal(err)
	}
	if *got.TailLatency != want {
		t.Errorf("tail latency %v != Equation 6 %v", *got.TailLatency, want)
	}
	if *got.TailLatency < 0 {
		t.Errorf("negative tail latency %v", *got.TailLatency)
	}

	// Saturated queue: the degradation pushes mu' = (1-deg)*mu below
	// lambda; the daemon must flag saturation rather than emit a negative
	// or infinite latency.
	lambda := (1 - deg) * 1000 * 1.01
	got, err = c.Colocate(context.Background(), ColocateRequest{
		Victim: "web-search", Aggressor: "429.mcf", QoSTarget: 0.5,
		Queue: &QueueSpec{Mu: 1000, Lambda: lambda, Percentile: 0.99},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Saturated || got.TailLatency != nil {
		t.Errorf("saturated queue not flagged: %+v", got)
	}
}

func TestColocateValidation(t *testing.T) {
	_, c := newTestServer(t, Config{})
	base := ColocateRequest{Victim: "web-search", Aggressor: "429.mcf", QoSTarget: 0.9}
	cases := []struct {
		name   string
		mutate func(*ColocateRequest)
	}{
		{"zero target", func(r *ColocateRequest) { r.QoSTarget = 0 }},
		{"target above one", func(r *ColocateRequest) { r.QoSTarget = 1.5 }},
		{"non-positive mu", func(r *ColocateRequest) { r.Queue = &QueueSpec{Mu: 0, Lambda: 1} }},
		{"non-positive lambda", func(r *ColocateRequest) { r.Queue = &QueueSpec{Mu: 1, Lambda: -2} }},
		{"percentile at one", func(r *ColocateRequest) { r.Queue = &QueueSpec{Mu: 10, Lambda: 1, Percentile: 1} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := base
			tc.mutate(&req)
			_, err := c.Colocate(context.Background(), req)
			var apiErr *APIError
			if !errors.As(err, &apiErr) || apiErr.Code != CodeInvalidArgument {
				t.Errorf("got %v, want invalid_argument", err)
			}
		})
	}
}

func TestBatchScoresCandidateSet(t *testing.T) {
	_, c := newTestServer(t, Config{})
	chars := testChars()
	m := testModel()

	got, err := c.Batch(context.Background(), BatchRequest{
		Victim: "web-search", Threads: 6, QoSTarget: 0.9,
		Candidates: []BatchCandidate{
			{Aggressor: "429.mcf", Instances: 6},
			{Aggressor: "444.namd", Instances: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(got.Results))
	}
	wants := []float64{
		m.PredictPartial(chars[0], chars[1], 6, 6),
		m.PredictPartial(chars[0], chars[2], 1, 6),
	}
	for i, res := range got.Results {
		if res.Degradation != wants[i] {
			t.Errorf("result %d: degradation %v != in-process %v", i, res.Degradation, wants[i])
		}
		if res.Safe == nil {
			t.Errorf("result %d: Safe missing despite qos_target", i)
		} else if *res.Safe != (1-res.Degradation >= 0.9) {
			t.Errorf("result %d: safe=%v inconsistent with deg %v", i, *res.Safe, res.Degradation)
		}
	}
	if got.Results[0].Aggressor != "429.mcf" || got.Results[1].Aggressor != "444.namd" {
		t.Error("results not in candidate order")
	}

	// Without a target the Safe field is omitted.
	got, err = c.Batch(context.Background(), BatchRequest{
		Victim:     "web-search",
		Candidates: []BatchCandidate{{Aggressor: "429.mcf"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Results[0].Safe != nil {
		t.Error("Safe present without qos_target")
	}

	// One bad candidate fails the whole request, naming the candidate.
	_, err = c.Batch(context.Background(), BatchRequest{
		Victim: "web-search",
		Candidates: []BatchCandidate{
			{Aggressor: "429.mcf"},
			{Aggressor: "ghost"},
		},
	})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != CodeUnknownProfile {
		t.Fatalf("got %v, want unknown_profile", err)
	}
	if !strings.Contains(apiErr.Message, "candidate 1") {
		t.Errorf("error %q does not name the failing candidate", apiErr.Message)
	}
}

func TestProfileUploadRoundTripAndInvalidation(t *testing.T) {
	s, c := newTestServer(t, Config{})
	ctx := context.Background()

	before, err := c.Predict(ctx, PredictRequest{Victim: "web-search", Aggressor: "429.mcf"})
	if err != nil {
		t.Fatal(err)
	}

	// Re-upload the aggressor with a hotter contentiousness profile; the
	// memoized prediction must not survive the upload.
	hot := testChars()[1]
	for d := range hot.Con {
		hot.Con[d] *= 2
	}
	resp, err := c.UploadProfiles(ctx, []smite.Characterization{hot})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Added != 1 || resp.Total != 3 {
		t.Errorf("upload ack %+v, want added=1 total=3", resp)
	}
	after, err := c.Predict(ctx, PredictRequest{Victim: "web-search", Aggressor: "429.mcf"})
	if err != nil {
		t.Fatal(err)
	}
	if after.Degradation <= before.Degradation {
		t.Errorf("stale prediction after re-upload: before %v, after %v", before.Degradation, after.Degradation)
	}
	if want := testModel().PredictPair(testChars()[0], hot); after.Degradation != want {
		t.Errorf("post-upload degradation %v != in-process %v", after.Degradation, want)
	}
	if s.reg.Len() != 3 {
		t.Errorf("registry size %d after replace-by-name, want 3", s.reg.Len())
	}
}

func TestProfileUploadRejectsBadPayloads(t *testing.T) {
	_, c := newTestServer(t, Config{})
	var good strings.Builder
	if err := smite.SaveProfiles(&good, testChars()[:1]); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		body string
	}{
		{"truncated", good.String()[:good.Len()/2]},
		{"not json", "ceci n'est pas un json"},
		{"version skew", strings.Replace(good.String(), `"version": 1`, `"version": 99`, 1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := c.roundTrip(context.Background(), http.MethodPost, "/v1/profiles",
				strings.NewReader(tc.body), nil)
			var apiErr *APIError
			if !errors.As(err, &apiErr) || apiErr.Code != CodeUnprocessable || apiErr.Status != 422 {
				t.Errorf("got %v, want unprocessable_profiles/422", err)
			}
		})
	}
}

func TestRoutingErrorsAreTypedJSON(t *testing.T) {
	_, c := newTestServer(t, Config{})
	for _, tc := range []struct {
		method, path string
		wantCode     string
		wantHTTP     int
	}{
		{http.MethodGet, "/v1/predict", CodeMethodNotAllowed, 405},
		{http.MethodPost, "/healthz", CodeMethodNotAllowed, 405},
		{http.MethodGet, "/no/such/route", CodeNotFound, 404},
	} {
		err := c.roundTrip(context.Background(), tc.method, tc.path, nil, nil)
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Code != tc.wantCode || apiErr.Status != tc.wantHTTP {
			t.Errorf("%s %s: got %v, want %s/%d", tc.method, tc.path, err, tc.wantCode, tc.wantHTTP)
		}
	}

	// Malformed JSON bodies get the bad_json code.
	err := c.roundTrip(context.Background(), http.MethodPost, "/v1/predict",
		strings.NewReader("{"), nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != CodeBadJSON || apiErr.Status != 400 {
		t.Errorf("malformed body: got %v, want bad_json/400", err)
	}
}

func TestMetricsReflectTraffic(t *testing.T) {
	_, c := newTestServer(t, Config{MaxInFlight: 8})
	ctx := context.Background()

	req := PredictRequest{Victim: "web-search", Aggressor: "429.mcf"}
	for i := 0; i < 3; i++ {
		if _, err := c.Predict(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Predict(ctx, PredictRequest{Victim: "web-search", Aggressor: "missing"}); err == nil {
		t.Fatal("expected unknown_profile")
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	pr := m.Requests["POST /v1/predict"]
	if pr.Total != 4 || pr.Status2xx != 3 || pr.Status4xx != 1 {
		t.Errorf("predict route counts %+v, want total=4 2xx=3 4xx=1", pr)
	}
	// Three identical predictions: one miss, two memo hits.
	if m.PredictionCache.Misses != 1 || m.PredictionCache.Hits != 2 || m.PredictionCache.Entries != 1 {
		t.Errorf("prediction cache %+v, want hits=2 misses=1 entries=1", m.PredictionCache)
	}
	if m.Profiles != 3 || !m.ModelLoaded || m.MaxInFlight != 8 {
		t.Errorf("registry gauges %+v", m)
	}
	if m.Latency.Window < 4 || m.Latency.Max < m.Latency.P50 {
		t.Errorf("latency summary %+v inconsistent", m.Latency)
	}
	if m.UptimeSeconds <= 0 {
		t.Errorf("uptime %v not positive", m.UptimeSeconds)
	}
}

// TestConcurrencyGateSheds exercises the bounded-concurrency middleware
// directly: with one slot held by a parked request, a second request must
// be shed with 429 once its deadline fires.
func TestConcurrencyGateSheds(t *testing.T) {
	s := NewServer(NewRegistry(), Config{MaxInFlight: 1, RequestTimeout: 50 * time.Millisecond})
	entered := make(chan struct{})
	release := make(chan struct{})
	blocking := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	})
	h := s.withTimeout(s.limitConcurrency(blocking))
	ts := httptest.NewServer(h)
	defer ts.Close()
	defer close(release)

	go func() {
		resp, err := ts.Client().Get(ts.URL + "/")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	resp, err := ts.Client().Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request got %d, want 429", resp.StatusCode)
	}
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == nil || env.Error.Code != CodeOverloaded {
		t.Errorf("shed response not the typed overloaded envelope: %+v (%v)", env, err)
	}
}

// TestConcurrentTraffic hammers the full stack from many goroutines while
// uploads mutate the registry — the race detector's view of the daemon.
func TestConcurrentTraffic(t *testing.T) {
	_, c := newTestServer(t, Config{MaxInFlight: 4})
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				switch j % 4 {
				case 0:
					_, err := c.Predict(ctx, PredictRequest{Victim: "web-search", Aggressor: "429.mcf"})
					if err != nil {
						t.Errorf("predict: %v", err)
					}
				case 1:
					_, err := c.Batch(ctx, BatchRequest{
						Victim: "web-search", Threads: 4, QoSTarget: 0.9,
						Candidates: []BatchCandidate{{Aggressor: "444.namd", Instances: 2}},
					})
					if err != nil {
						t.Errorf("batch: %v", err)
					}
				case 2:
					ch := testChars()[1]
					ch.Con[0] = float64(i*100+j) * 1e-6
					if _, err := c.UploadProfiles(ctx, []smite.Characterization{ch}); err != nil {
						t.Errorf("upload: %v", err)
					}
				case 3:
					if _, err := c.Metrics(ctx); err != nil {
						t.Errorf("metrics: %v", err)
					}
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestPartialProfileName(t *testing.T) {
	if got := PartialProfileName("web-search", 3); got != "web-search#3" {
		t.Errorf("got %q", got)
	}
}

func TestUploadErrorMapsAllLoadClasses(t *testing.T) {
	for _, err := range []error{
		fmt.Errorf("wrap: %w", smite.ErrCorrupt),
		fmt.Errorf("wrap: %w", smite.ErrVersionSkew),
		fmt.Errorf("wrap: %w", smite.ErrDimensionMismatch),
	} {
		if e := uploadError(err); e.Status != 422 || e.Code != CodeUnprocessable {
			t.Errorf("%v mapped to %d/%s", err, e.Status, e.Code)
		}
	}
}

// Saturated predictions must never surface as negative numbers anywhere
// in the API (the queueing guard returns +Inf, and the handler converts
// that to the saturated flag). The second half drives the degradation
// itself to the edges — exactly 1.0 (zero drain), NaN and ±Inf — via
// hand-built profiles (JSON uploads cannot carry non-finite numbers, so
// the profiles go in through the in-process registry): every one must
// surface as Saturated with the latency omitted, never as a zero or
// negative number.
func TestNoNegativeLatencyEverLeaks(t *testing.T) {
	_, c := newTestServer(t, Config{})
	for _, lambda := range []float64{1, 500, 999, 1500} {
		got, err := c.Colocate(context.Background(), ColocateRequest{
			Victim: "web-search", Aggressor: "429.mcf", QoSTarget: 0.5,
			Queue: &QueueSpec{Mu: 1000, Lambda: lambda},
		})
		if err != nil {
			t.Fatal(err)
		}
		if got.TailLatency != nil && (*got.TailLatency < 0 || math.IsInf(*got.TailLatency, 0)) {
			t.Errorf("lambda=%v: leaked latency %v", lambda, *got.TailLatency)
		}
		if got.TailLatency == nil && !got.Saturated {
			t.Errorf("lambda=%v: latency omitted without saturated flag", lambda)
		}
	}

	// testModel is intercept 0.01 with every coefficient 0.2, so a victim
	// with Sen[0]=1 against Con[0]=x predicts 0.01 + 0.2x: pick x to land
	// the degradation exactly on (or beyond) the edge under test.
	s, c := newTestServer(t, Config{})
	conFor := func(deg float64) float64 { return (deg - 0.01) / 0.2 }
	cases := []struct {
		name string
		con  float64
	}{
		{"deg exactly 1.0", conFor(1.0)},
		{"deg above 1.0", conFor(1.5)},
		{"NaN deg", math.NaN()},
		{"+Inf deg", math.Inf(1)},
		{"-Inf deg", math.Inf(-1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			victim := smite.Characterization{App: "edge-victim", SoloIPC: 1}
			aggr := smite.Characterization{App: "edge-aggressor", SoloIPC: 1}
			victim.Sen[0] = 1
			aggr.Con[0] = tc.con
			s.reg.AddProfiles([]smite.Characterization{victim, aggr})
			got, err := c.Colocate(context.Background(), ColocateRequest{
				Victim: "edge-victim", Aggressor: "edge-aggressor", QoSTarget: 0.5,
				Queue: &QueueSpec{Mu: 1000, Lambda: 500},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !got.Saturated {
				t.Errorf("degradation edge served without saturated flag: %+v", got)
			}
			if got.TailLatency != nil {
				t.Errorf("degradation edge leaked tail latency %v", *got.TailLatency)
			}
		})
	}
}

// Every prediction reports the registry generation it was computed
// under, and the generation moves exactly when the registry mutates —
// the signal a closed-loop controller uses to confirm that a
// re-characterization landed.
func TestPredictGenerationTracksRegistry(t *testing.T) {
	s, c := newTestServer(t, Config{})
	ctx := context.Background()
	req := PredictRequest{Victim: "web-search", Aggressor: "429.mcf"}

	first, err := c.Predict(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Generation == 0 {
		t.Fatal("loaded registry served generation 0")
	}
	again, err := c.Predict(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if again.Generation != first.Generation {
		t.Fatalf("generation moved without a mutation: %d -> %d", first.Generation, again.Generation)
	}

	// A profile upload is a mutation: the next answer carries a newer
	// generation even though the pair's degradation may be unchanged.
	s.reg.AddProfiles([]smite.Characterization{{App: "bystander", SoloIPC: 1.0}})
	after, err := c.Predict(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if after.Generation <= first.Generation {
		t.Fatalf("generation did not advance across an upload: %d then %d", first.Generation, after.Generation)
	}
}
