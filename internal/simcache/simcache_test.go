package simcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestHitMiss(t *testing.T) {
	c := New[int]()
	k := KeyOf("a")
	calls := 0
	compute := func() (int, error) { calls++; return 42, nil }

	v, hit, err := c.Do(k, compute)
	if err != nil || hit || v != 42 {
		t.Fatalf("first Do = (%d, hit=%v, %v), want (42, false, nil)", v, hit, err)
	}
	v, hit, err = c.Do(k, compute)
	if err != nil || !hit || v != 42 {
		t.Fatalf("second Do = (%d, hit=%v, %v), want (42, true, nil)", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want {Hits:1 Misses:1 Entries:1}", st)
	}
}

func TestDistinctKeysDistinctValues(t *testing.T) {
	c := New[string]()
	for i := 0; i < 10; i++ {
		i := i
		v, hit, err := c.Do(KeyOf("item", i), func() (string, error) {
			return fmt.Sprint("v", i), nil
		})
		if err != nil || hit || v != fmt.Sprint("v", i) {
			t.Fatalf("Do(%d) = (%q, hit=%v, %v)", i, v, hit, err)
		}
	}
	if st := c.Stats(); st.Entries != 10 || st.Misses != 10 {
		t.Fatalf("stats = %+v, want 10 entries / 10 misses", st)
	}
}

func TestSingleFlight(t *testing.T) {
	c := New[int]()
	k := KeyOf("shared")
	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]int, waiters)
	// The leader blocks inside compute until release is closed, proving the
	// other goroutines waited on its flight rather than computing.
	go func() {
		v, _, err := c.Do(k, func() (int, error) {
			close(started)
			<-release
			calls.Add(1)
			return 7, nil
		})
		if err != nil || v != 7 {
			t.Errorf("leader Do = (%d, %v)", v, err)
		}
	}()
	<-started
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(k, func() (int, error) {
				calls.Add(1)
				return -1, nil // must never run
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != 7 {
			t.Fatalf("waiter %d got %d, want 7", i, v)
		}
	}
}

func TestErrorNotCached(t *testing.T) {
	c := New[int]()
	k := KeyOf("flaky")
	boom := errors.New("boom")
	calls := 0

	_, _, err := c.Do(k, func() (int, error) { calls++; return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Do error = %v, want boom", err)
	}
	v, hit, err := c.Do(k, func() (int, error) { calls++; return 5, nil })
	if err != nil || hit || v != 5 {
		t.Fatalf("retry Do = (%d, hit=%v, %v), want (5, false, nil)", v, hit, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1 (failure must not be stored)", st.Entries)
	}
}

func TestPanicReleasesWaiters(t *testing.T) {
	c := New[int]()
	k := KeyOf("panicky")

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		_, _, _ = c.Do(k, func() (int, error) { panic("die") })
	}()
	// The key must be computable again afterwards.
	v, hit, err := c.Do(k, func() (int, error) { return 9, nil })
	if err != nil || hit || v != 9 {
		t.Fatalf("Do after panic = (%d, hit=%v, %v), want (9, false, nil)", v, hit, err)
	}
}

func TestGet(t *testing.T) {
	c := New[int]()
	k := KeyOf("g")
	if _, ok := c.Get(k); ok {
		t.Fatal("Get on empty cache reported ok")
	}
	_, _, _ = c.Do(k, func() (int, error) { return 3, nil })
	if v, ok := c.Get(k); !ok || v != 3 {
		t.Fatalf("Get = (%d, %v), want (3, true)", v, ok)
	}
}

func TestKeyOfSensitivity(t *testing.T) {
	type opts struct {
		Warmup  uint64
		Measure uint64
		seed    uint64 // unexported fields must participate too
	}
	base := KeyOf("run", opts{Warmup: 100, Measure: 200, seed: 1}, "SMT", 0.5)
	variants := []Key{
		KeyOf("run", opts{Warmup: 101, Measure: 200, seed: 1}, "SMT", 0.5),
		KeyOf("run", opts{Warmup: 100, Measure: 201, seed: 1}, "SMT", 0.5),
		KeyOf("run", opts{Warmup: 100, Measure: 200, seed: 2}, "SMT", 0.5),
		KeyOf("run", opts{Warmup: 100, Measure: 200, seed: 1}, "CMP", 0.5),
		KeyOf("run", opts{Warmup: 100, Measure: 200, seed: 1}, "SMT", 0.75),
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d collided with base key", i)
		}
	}
	if again := KeyOf("run", opts{Warmup: 100, Measure: 200, seed: 1}, "SMT", 0.5); again != base {
		t.Error("identical parts produced different keys")
	}
	// Part boundaries must matter: ("ab","c") vs ("a","bc").
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Error("part-boundary collision")
	}
}

// TestConcurrentMixed hammers one cache from many goroutines across
// overlapping keys; run under -race this validates the synchronisation.
func TestConcurrentMixed(t *testing.T) {
	c := New[int]()
	const (
		goroutines = 16
		iterations = 200
		keys       = 23
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				id := (g*iterations + i*7) % keys
				v, _, err := c.Do(KeyOf("k", id), func() (int, error) {
					if id%5 == 4 {
						return 0, errors.New("transient")
					}
					return id * 3, nil
				})
				if err == nil && v != id*3 {
					t.Errorf("key %d -> %d, want %d", id, v, id*3)
					return
				}
				c.Get(KeyOf("k", id))
				c.Stats()
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != goroutines*iterations {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, goroutines*iterations)
	}
}
