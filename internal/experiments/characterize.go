package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/profile"
	"repro/internal/rulers"
	"repro/internal/stats"
	"repro/internal/workload"
)

// allAppsSet returns the full characterization population (SPEC +
// CloudSuite, truncated per scale) and a cache key name for it.
func (l *Lab) allAppsSet() ([]*workload.Spec, string) {
	set := append(l.specSet(workload.SPECCPU2006()), l.cloudSet()...)
	return set, fmt.Sprintf("all-%d", len(set))
}

// SenConResult is the characterization matrix behind Figures 2, 4 and 6:
// per-application sensitivity and contentiousness in each dimension.
type SenConResult struct {
	Title string
	// Dims are the dimensions shown (Figure 2: functional units; Figure 4:
	// memory subsystem; Figure 6: all seven).
	Dims  []rulers.Dimension
	Chars []profile.Characterization
}

// Fig2FunctionalUnits measures sensitivity and contentiousness on the four
// functional-unit dimensions for all applications (paper Figure 2).
func (l *Lab) Fig2FunctionalUnits() (SenConResult, error) {
	return l.Fig2FunctionalUnitsContext(context.Background())
}

// Fig2FunctionalUnitsContext is Fig2FunctionalUnits with cooperative
// cancellation.
func (l *Lab) Fig2FunctionalUnitsContext(ctx context.Context) (SenConResult, error) {
	chars, err := l.characterizeAllApps(ctx)
	if err != nil {
		return SenConResult{}, err
	}
	return SenConResult{
		Title: "Figure 2: sensitivity/contentiousness on functional-unit resources",
		Dims:  []rulers.Dimension{rulers.DimFPMul, rulers.DimFPAdd, rulers.DimFPShf, rulers.DimIntAdd},
		Chars: chars,
	}, nil
}

// Fig4MemorySubsystem measures sensitivity and contentiousness on the
// cache dimensions (paper Figure 4).
func (l *Lab) Fig4MemorySubsystem() (SenConResult, error) {
	return l.Fig4MemorySubsystemContext(context.Background())
}

// Fig4MemorySubsystemContext is Fig4MemorySubsystem with cooperative
// cancellation.
func (l *Lab) Fig4MemorySubsystemContext(ctx context.Context) (SenConResult, error) {
	chars, err := l.characterizeAllApps(ctx)
	if err != nil {
		return SenConResult{}, err
	}
	return SenConResult{
		Title: "Figure 4: sensitivity/contentiousness on memory-subsystem resources",
		Dims:  []rulers.Dimension{rulers.DimL1, rulers.DimL2, rulers.DimL3},
		Chars: chars,
	}, nil
}

// Fig6Summary is the full seven-dimension matrix (paper Figure 6).
func (l *Lab) Fig6Summary() (SenConResult, error) {
	return l.Fig6SummaryContext(context.Background())
}

// Fig6SummaryContext is Fig6Summary with cooperative cancellation.
func (l *Lab) Fig6SummaryContext(ctx context.Context) (SenConResult, error) {
	chars, err := l.characterizeAllApps(ctx)
	if err != nil {
		return SenConResult{}, err
	}
	return SenConResult{
		Title: "Figure 6: sensitivity/contentiousness of all applications across all dimensions",
		Dims:  rulers.Dimensions(),
		Chars: chars,
	}, nil
}

func (l *Lab) characterizeAllApps(ctx context.Context) ([]profile.Characterization, error) {
	set, name := l.allAppsSet()
	return l.CharacterizationsContext(ctx, SandyBridgeEN, profile.SMT, set, name)
}

// String renders the matrix.
func (r SenConResult) String() string {
	var b strings.Builder
	b.WriteString(r.Title + "\n")
	header := []string{"application"}
	for _, d := range r.Dims {
		header = append(header, "Sen:"+d.String(), "Con:"+d.String())
	}
	t := newTable(header...)
	for _, c := range r.Chars {
		row := []string{c.App}
		for _, d := range r.Dims {
			row = append(row, pct(c.Sen[d]), pct(c.Con[d]))
		}
		t.row(row...)
	}
	b.WriteString(t.String())
	return b.String()
}

// Findings verifies the figure's headline findings hold on the measured
// data, returning a human-readable report and whether all checks passed.
func (r SenConResult) Findings() (string, bool) {
	var b strings.Builder
	ok := true
	check := func(cond bool, format string, args ...any) {
		status := "PASS"
		if !cond {
			status = "FAIL"
			ok = false
		}
		fmt.Fprintf(&b, "[%s] %s\n", status, fmt.Sprintf(format, args...))
	}
	// Finding 1/2: per-dimension sensitivity varies widely across apps.
	for _, d := range r.Dims {
		var sen []float64
		for _, c := range r.Chars {
			sen = append(sen, c.Sen[d])
		}
		spread := stats.Max(sen) - stats.Min(sen)
		check(spread > 0.05, "sensitivity spread on %v = %.2f (want variability across applications)", d, spread)
	}
	return b.String(), ok
}

// Fig7Result is the cross-dimension correlation analysis (paper Figure 7).
type Fig7Result struct {
	// Labels name the 2×7 series (7 sensitivities then 7 contentiousness).
	Labels []string
	// AbsPearson is the symmetric matrix of |r| values.
	AbsPearson [][]float64
	// FracBelow80 and FracBelow50 are the paper's headline statistics:
	// the fraction of off-diagonal pairs with |r| < 0.80 and < 0.50.
	FracBelow80 float64
	FracBelow50 float64
}

// Fig7Correlation computes the absolute Pearson correlations among all 14
// sensitivity/contentiousness dimensions across applications.
func (l *Lab) Fig7Correlation() (Fig7Result, error) {
	return l.Fig7CorrelationContext(context.Background())
}

// Fig7CorrelationContext is Fig7Correlation with cooperative cancellation.
func (l *Lab) Fig7CorrelationContext(ctx context.Context) (Fig7Result, error) {
	chars, err := l.characterizeAllApps(ctx)
	if err != nil {
		return Fig7Result{}, err
	}
	return CorrelationFromChars(chars)
}

// CorrelationFromChars computes the Figure 7 matrix from an existing
// characterization set.
func CorrelationFromChars(chars []profile.Characterization) (Fig7Result, error) {
	nd := int(rulers.NumDimensions)
	series := make([][]float64, 2*nd)
	labels := make([]string, 2*nd)
	for d := 0; d < nd; d++ {
		labels[d] = "Sen:" + rulers.Dimension(d).String()
		labels[nd+d] = "Con:" + rulers.Dimension(d).String()
	}
	for _, c := range chars {
		for d := 0; d < nd; d++ {
			series[d] = append(series[d], c.Sen[d])
			series[nd+d] = append(series[nd+d], c.Con[d])
		}
	}
	m := make([][]float64, 2*nd)
	below80, below50, offDiag := 0, 0, 0
	for i := range m {
		m[i] = make([]float64, 2*nd)
		for j := range m[i] {
			if i == j {
				m[i][j] = 1
				continue
			}
			r, err := stats.Pearson(series[i], series[j])
			if err != nil {
				// A constant series (an app population that never touches
				// a dimension) has undefined correlation; treat as 0.
				r = 0
			}
			if r < 0 {
				r = -r
			}
			m[i][j] = r
			if i < j {
				offDiag++
				if r < 0.80 {
					below80++
				}
				if r < 0.50 {
					below50++
				}
			}
		}
	}
	res := Fig7Result{Labels: labels, AbsPearson: m}
	if offDiag > 0 {
		res.FracBelow80 = float64(below80) / float64(offDiag)
		res.FracBelow50 = float64(below50) / float64(offDiag)
	}
	return res, nil
}

// String renders the correlation matrix and headline statistics.
func (r Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 7: |Pearson| correlation among sensitivity/contentiousness dimensions\n")
	header := append([]string{""}, r.Labels...)
	t := newTable(header...)
	for i, row := range r.AbsPearson {
		cells := []string{r.Labels[i]}
		for _, v := range row {
			cells = append(cells, fmt.Sprintf("%.2f", v))
		}
		t.row(cells...)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "pairs with |r| < 0.80: %s (paper: 97.96%%)\n", pct(r.FracBelow80))
	fmt.Fprintf(&b, "pairs with |r| < 0.50: %s (paper: majority)\n", pct(r.FracBelow50))
	return b.String()
}
