package engine

import (
	"reflect"
	"testing"

	"repro/internal/rulers"
	"repro/internal/sim/isa"
	"repro/internal/sim/pmu"
	"repro/internal/workload"
)

// chipObservation captures every externally visible piece of chip state a
// measurement reads: per-context counters, hierarchy statistics, memory
// controller statistics and the cycle clock.
type chipObservation struct {
	Cycle    uint64
	Counters [][2]pmu.Counters
	L1Hits   []uint64
	L1Miss   []uint64
	L2Hits   []uint64
	L2Miss   []uint64
	L3Hits   uint64
	L3Miss   uint64
	L3Lines  int
	MemReqs  uint64
}

func observe(c *Chip) chipObservation {
	o := chipObservation{Cycle: c.Cycle()}
	for i := range c.cores {
		var pair [2]pmu.Counters
		for k := 0; k < 2; k++ {
			pair[k] = c.Counters(i, k)
		}
		o.Counters = append(o.Counters, pair)
		h1, m1, _ := c.CoreL1D(i).Stats()
		h2, m2, _ := c.CoreL2(i).Stats()
		o.L1Hits = append(o.L1Hits, h1)
		o.L1Miss = append(o.L1Miss, m1)
		o.L2Hits = append(o.L2Hits, h2)
		o.L2Miss = append(o.L2Miss, m2)
	}
	o.L3Hits, o.L3Miss, _ = c.L3().Stats()
	o.L3Lines = c.L3().LineCount()
	o.MemReqs, _, _ = c.Memory().Stats()
	return o
}

// runMeasurement drives a canonical two-context co-location on the chip:
// assign, prewarm, warm up, reset counters, measure — the same sequence
// profile.simulate performs.
func runMeasurement(t *testing.T, chip *Chip, cfg isa.Config, seed uint64) chipObservation {
	t.Helper()
	spec, err := workload.ByName("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	chip.Assign(0, 0, workload.NewGen(spec, seed))
	chip.Assign(0, 1, rulers.For(cfg, rulers.DimL2).NewStream(seed+1))
	chip.Prewarm(30000)
	chip.Run(5000)
	chip.ResetCounters()
	chip.Run(20000)
	return observe(chip)
}

// TestResetBitIdentical is the contract the batched characterization path
// rests on: a chip that has already simulated an arbitrary workload and been
// Reset must behave bit-identically to a freshly constructed chip. Every
// counter, every hierarchy statistic and the cycle clock must match.
func TestResetBitIdentical(t *testing.T) {
	cfg := testConfig()
	fresh := MustNew(cfg)
	want := runMeasurement(t, fresh, cfg, 11)

	reused := MustNew(cfg)
	// Dirty the chip thoroughly first: a different workload, different
	// seeds, a mid-window stop so MSHRs, store buffers and the memory
	// controller backlog are all mid-flight when Reset hits.
	dirty, err := workload.ByName("470.lbm")
	if err != nil {
		t.Fatal(err)
	}
	reused.Assign(0, 0, workload.NewGen(dirty, 99))
	reused.Assign(1, 0, rulers.For(cfg, rulers.DimMemBW).NewStream(7))
	reused.Prewarm(40000)
	reused.Run(13333)

	reused.Reset()
	got := runMeasurement(t, reused, cfg, 11)

	if !reflect.DeepEqual(want, got) {
		t.Errorf("reset chip diverged from fresh chip:\n fresh: %+v\nreused: %+v", want, got)
	}
}

// TestResetClearsChecker pins that Reset detaches an attached checker and
// clears its latched error, returning the chip to post-New state.
func TestResetClearsChecker(t *testing.T) {
	cfg := testConfig()
	chip := MustNew(cfg)
	chip.SetChecker(failingChecker{}, 64)
	chip.Assign(0, 0, rulers.FPAdd().NewStream(1))
	chip.Run(256)
	if chip.CheckErr() == nil {
		t.Fatal("failing checker did not latch an error")
	}
	chip.Reset()
	if chip.CheckErr() != nil {
		t.Errorf("Reset left a latched checker error: %v", chip.CheckErr())
	}
	if chip.checker != nil || chip.sampler != nil {
		t.Error("Reset left a checker or sampler attached")
	}
	chip.Assign(0, 0, rulers.FPAdd().NewStream(1))
	chip.Run(256)
	if chip.CheckErr() != nil {
		t.Errorf("detached checker still latched an error after Reset: %v", chip.CheckErr())
	}
}

type failingChecker struct{}

func (failingChecker) OnCycle(c *Chip) error { return errAlwaysFails }
func (failingChecker) OnReset(c *Chip)       {}

var errAlwaysFails = &checkerError{}

type checkerError struct{}

func (*checkerError) Error() string { return "always fails" }
