package cluster

import (
	"context"
	"reflect"
	"testing"
)

// driftSimConfig is synthSimConfig with SLO parameters and a mid-run
// drift: at a third of the horizon the measured degradation surface
// triples for every batch application, while the prediction table (and
// the static SLO gate built from it) stays pre-drift.
func driftSimConfig(tb testing.TB, machines int, horizon float64, seed uint64) SimConfig {
	tb.Helper()
	cfg := synthSimConfig(tb, machines, horizon, seed)
	cfg.SLO = sloSimParams()
	cfg.Drift = &DriftSpec{At: horizon / 3, Factor: 3}
	return cfg
}

// TestSimClosedLoopUnderDrift runs the closed loop end to end: the
// detector must confirm the injected drift, re-characterize, and the run
// must beat the static SLO gate on the same event streams; migrate log
// entries must be well formed; and the whole thing must be bit-identical
// across worker counts.
func TestSimClosedLoopUnderDrift(t *testing.T) {
	cfg := driftSimConfig(t, 80, 1.8, 23)
	cfg.Policy = PolicyClosedLoop
	events, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer saveFailureTrace(t, cfg, events)

	res, err := RunSim(context.Background(), cfg, events, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detections == 0 {
		t.Error("injected drift never confirmed")
	}
	if res.Recharacterized == 0 {
		t.Error("confirmed drift never re-characterized")
	}
	if res.Detections != res.Recharacterized {
		t.Errorf("detections %d != re-characterizations %d (each confirmation refreshes its pair)",
			res.Detections, res.Recharacterized)
	}

	// Migrate entries: typed, From ≠ Machine, receiving machine holds ≥1
	// instance; and they never appear before the drift lands (the static
	// gate is consistent with the pre-drift world, so nothing confirms).
	migrations := 0
	for _, p := range res.Log {
		switch p.Kind {
		case "":
			if p.From != 0 {
				t.Fatalf("plain decision with From set: %+v", p)
			}
		case PlacementMigrate:
			migrations++
			if p.From == p.Machine || p.Machine < 0 || p.N < 1 || p.Batch < 0 {
				t.Fatalf("malformed migrate entry: %+v", p)
			}
		default:
			t.Fatalf("unknown placement kind %q", p.Kind)
		}
	}
	if migrations != res.Migrations {
		t.Errorf("log has %d migrate entries, result counts %d", migrations, res.Migrations)
	}
	if res.Migrations+res.MigrationsFailed == 0 {
		t.Error("confirmed drift never attempted a migration")
	}

	sum := res.Summary()
	if sum.ClosedLoop == nil {
		t.Fatal("closed-loop run produced no ClosedLoop summary")
	}
	if sum.ClosedLoop.Detections != res.Detections || sum.ClosedLoop.Migrations != res.Migrations {
		t.Errorf("summary %+v does not echo result counters", sum.ClosedLoop)
	}

	// The success metric: fewer actual SLO violations than the static
	// gate on identical streams. (The 20-seed law lives in internal/simtest.)
	static := cfg
	static.Policy = PolicySLO
	sres, err := RunSim(context.Background(), static, events, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations >= sres.Violations {
		t.Errorf("closed loop %d violations, static SLO gate %d — loop should win under drift",
			res.Violations, sres.Violations)
	}

	// Replay determinism across worker counts, migrations included.
	for _, workers := range []int{1, 8} {
		again, err := RunSim(context.Background(), cfg, events, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, again) {
			t.Fatalf("closed-loop run differs at %d workers", workers)
		}
	}
}

// TestSimClosedLoopStationary pins the quiet path: with no injected
// drift, the synthetic world's measurement noise sits under the detector
// allowance, so the loop behaves exactly like the static SLO gate.
func TestSimClosedLoopStationary(t *testing.T) {
	cfg := synthSimConfig(t, 60, 1.2, 31)
	cfg.Policy = PolicyClosedLoop
	cfg.SLO = sloSimParams()
	events, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSim(context.Background(), cfg, events, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detections != 0 || res.Migrations != 0 {
		t.Errorf("stationary world triggered the loop: %d detections, %d migrations",
			res.Detections, res.Migrations)
	}

	static := cfg
	static.Policy = PolicySLO
	sres, err := RunSim(context.Background(), static, events, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != sres.Placed || res.Violations != sres.Violations || res.Rejected != sres.Rejected {
		t.Errorf("quiet closed loop (placed %d, violations %d) should match static gate (placed %d, violations %d)",
			res.Placed, res.Violations, sres.Placed, sres.Violations)
	}
}

// TestSimDriftAccountingAllPolicies: the post-drift measured surface
// drives violation accounting for every policy, so the static gate run
// under drift records more violations than the same run without it.
func TestSimDriftAccountingAllPolicies(t *testing.T) {
	cfg := driftSimConfig(t, 60, 1.5, 7)
	cfg.Policy = PolicySLO
	events, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	drifted, err := RunSim(context.Background(), cfg, events, 4)
	if err != nil {
		t.Fatal(err)
	}
	calm := cfg
	calm.Drift = nil
	base, err := RunSim(context.Background(), calm, events, 4)
	if err != nil {
		t.Fatal(err)
	}
	if drifted.Placed != base.Placed {
		t.Fatalf("drift must not change static-gate decisions: placed %d vs %d", drifted.Placed, base.Placed)
	}
	if drifted.Violations <= base.Violations {
		t.Errorf("3× drift should add violations: %d with drift, %d without", drifted.Violations, base.Violations)
	}
}

// TestSimClosedLoopValidation rejects configurations the loop cannot run.
func TestSimClosedLoopValidation(t *testing.T) {
	cfg := synthSimConfig(t, 20, 0.5, 1)
	cfg.Policy = PolicyClosedLoop
	if err := cfg.Validate(); err == nil {
		t.Error("PolicyClosedLoop without SLO parameters accepted")
	}
	cfg.SLO = sloSimParams()
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid closed-loop config rejected: %v", err)
	}
	for _, spec := range []*DriftSpec{
		{At: -1, Factor: 2},
		{At: 0.1, Factor: 0},
		{At: 0.1, Factor: 2, Batches: []int{99}},
		{At: 0.1, Factor: 2, Batches: []int{-1}},
	} {
		cfg.Drift = spec
		if err := cfg.Validate(); err == nil {
			t.Errorf("invalid drift spec %+v accepted", spec)
		}
	}
	cfg.Drift = &DriftSpec{At: 0.1, Factor: 2, Batches: []int{0, 2}}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid drift spec rejected: %v", err)
	}
}
