package model

import (
	"fmt"
	"sort"

	"repro/internal/sim/pmu"
)

// CART is the decision-tree regressor from the paper's PMU baseline search
// (Section IV-B1 lists decision trees among the strategies tried before
// settling on linear regression). It trains on the concatenated PMU rates
// of victim and aggressor.
type CART struct {
	root *cartNode
	// MaxDepth and MinLeaf bound the tree.
	MaxDepth int
	MinLeaf  int
}

type cartNode struct {
	feature     int
	threshold   float64
	left, right *cartNode
	value       float64
	leaf        bool
}

// Name implements Predictor.
func (t *CART) Name() string { return "PMU-decision-tree" }

// Predict implements Predictor.
func (t *CART) Predict(obs PairObs) float64 {
	if t.root == nil {
		return 0
	}
	x := concatFeatures(obs.PMUA, obs.PMUB)
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// concatFeatures joins both sides' PMU rate vectors into one feature row.
func concatFeatures(a, b [pmu.NumPMUFeatures]float64) []float64 {
	out := make([]float64, 0, 2*pmu.NumPMUFeatures)
	out = append(out, a[:]...)
	return append(out, b[:]...)
}

// TrainCART grows a regression tree over the observations. Zero values for
// maxDepth/minLeaf select defaults (6 and 4).
func TrainCART(obs []PairObs, maxDepth, minLeaf int) (*CART, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("model: CART needs observations")
	}
	if maxDepth <= 0 {
		maxDepth = 6
	}
	if minLeaf <= 0 {
		minLeaf = 4
	}
	xs := make([][]float64, len(obs))
	ys := make([]float64, len(obs))
	for i, o := range obs {
		xs[i] = concatFeatures(o.PMUA, o.PMUB)
		ys[i] = o.Deg
	}
	t := &CART{MaxDepth: maxDepth, MinLeaf: minLeaf}
	idx := make([]int, len(obs))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.grow(xs, ys, idx, 0)
	return t, nil
}

func meanAt(ys []float64, idx []int) float64 {
	s := 0.0
	for _, i := range idx {
		s += ys[i]
	}
	return s / float64(len(idx))
}

func sseAt(ys []float64, idx []int) float64 {
	m := meanAt(ys, idx)
	s := 0.0
	for _, i := range idx {
		d := ys[i] - m
		s += d * d
	}
	return s
}

func (t *CART) grow(xs [][]float64, ys []float64, idx []int, depth int) *cartNode {
	if depth >= t.MaxDepth || len(idx) < 2*t.MinLeaf {
		return &cartNode{leaf: true, value: meanAt(ys, idx)}
	}
	bestSSE := sseAt(ys, idx)
	base := bestSSE
	bestFeat, bestThr := -1, 0.0
	nf := len(xs[0])
	order := make([]int, len(idx))
	for f := 0; f < nf; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return xs[order[a]][f] < xs[order[b]][f] })
		// Prefix sums over the sorted order for O(n) split evaluation.
		var sumL, sqL float64
		var sumR, sqR float64
		for _, i := range order {
			sumR += ys[i]
			sqR += ys[i] * ys[i]
		}
		for k := 0; k < len(order)-1; k++ {
			y := ys[order[k]]
			sumL += y
			sqL += y * y
			sumR -= y
			sqR -= y * y
			nL, nR := float64(k+1), float64(len(order)-k-1)
			if k+1 < t.MinLeaf || len(order)-k-1 < t.MinLeaf {
				continue
			}
			if xs[order[k]][f] == xs[order[k+1]][f] {
				continue // cannot split between equal values
			}
			sse := (sqL - sumL*sumL/nL) + (sqR - sumR*sumR/nR)
			if sse < bestSSE-1e-12 {
				bestSSE = sse
				bestFeat = f
				bestThr = (xs[order[k]][f] + xs[order[k+1]][f]) / 2
			}
		}
	}
	if bestFeat < 0 || bestSSE >= base {
		return &cartNode{leaf: true, value: meanAt(ys, idx)}
	}
	var left, right []int
	for _, i := range idx {
		if xs[i][bestFeat] <= bestThr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return &cartNode{
		feature:   bestFeat,
		threshold: bestThr,
		left:      t.grow(xs, ys, left, depth+1),
		right:     t.grow(xs, ys, right, depth+1),
	}
}

// Depth returns the tree's depth (0 for a stump).
func (t *CART) Depth() int { return depth(t.root) }

func depth(n *cartNode) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
