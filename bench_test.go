// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation section, as indexed in
// DESIGN.md. Each benchmark runs the corresponding experiment driver at
// TestScale (reduced application sets and measurement windows exercising
// the full code path); cmd/figures -scale full regenerates the paper-scale
// numbers recorded in EXPERIMENTS.md.
//
// Macro-benchmarks take seconds per iteration; run with -benchtime=1x for
// a single pass:
//
//	go test -bench=. -benchmem -benchtime=1x .
package repro

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	clusterworkload "repro/internal/cluster/workload"
	"repro/internal/ctrl"
	"repro/internal/experiments"
	"repro/internal/isol"
	"repro/internal/profile"
	"repro/internal/qosd"
	"repro/internal/sim/engine"
	"repro/internal/sim/isa"
	"repro/internal/surrogate"
	"repro/internal/workload"
	"repro/smite"
)

func newLab() *experiments.Lab { return experiments.NewLab(experiments.TestScale()) }

// skipMacroBench keeps `go test -short -bench .` fast: the figure-level
// macro benchmarks take seconds per iteration (Fig2FunctionalUnitSenCon
// sits at ~4.7 s/op), so short mode runs only the micro benchmarks. CI's
// bench job runs without -short and keeps the full gate.
func skipMacroBench(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("macro benchmark in short mode")
	}
}

// BenchmarkEngineHotLoop measures the raw engine cycle loop — the substrate
// every figure bottoms out in — on one SMT core, without the profiling
// layers. The memory-bound pair dominates real experiment wall-clock (long
// DRAM stalls), the compute-bound pair keeps the port scheduler honest, and
// the solo-idle case isolates the idle-skip fast path. ns/op is per
// Run(5000) window; the CI bench job gates on these numbers (see
// BENCH_baseline.json).
func BenchmarkEngineHotLoop(b *testing.B) {
	cases := []struct {
		name string
		a, p string // app and SMT partner ("" = solo)
	}{
		{"mem-bound-smt", "429.mcf", "470.lbm"},
		{"compute-bound-smt", "444.namd", "453.povray"},
		{"mem-bound-solo", "429.mcf", ""},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			cfg := isa.IvyBridge()
			cfg.Cores = 1
			chip := engine.MustNew(cfg)
			spec, err := workload.ByName(bc.a)
			if err != nil {
				b.Fatal(err)
			}
			chip.Assign(0, 0, workload.NewGen(spec, 1))
			if bc.p != "" {
				ps, err := workload.ByName(bc.p)
				if err != nil {
					b.Fatal(err)
				}
				chip.Assign(0, 1, workload.NewGen(ps, 2))
			}
			chip.Prewarm(60_000)
			chip.Run(10_000) // warm the pipeline before timing
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				chip.Run(5000)
			}
			b.StopTimer()
			if c := chip.Counters(0, 0); c.Instructions == 0 {
				b.Fatal("no forward progress")
			}
		})
	}
}

// BenchmarkEngineHotLoopIsolated is BenchmarkEngineHotLoop's mem-bound SMT
// pair with hardware QoS enforcement actually engaged: a half/half L3 way
// partition alone, then with a token-bucket throttle on the aggressor. The
// gate pins the cost of the enforcement mechanisms themselves; the
// disabled path needs no twin benchmark because a zero isol.Policy takes
// the exact pre-isolation code path, which EngineHotLoop already gates.
func BenchmarkEngineHotLoopIsolated(b *testing.B) {
	cases := []struct {
		name     string
		throttle bool
	}{
		{"ways-half", false},
		{"ways-half+throttle", true},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			cfg := isa.IvyBridge()
			cfg.Cores = 1
			v, a := isol.SplitWays(cfg.L3.Ways/2, cfg.L3.Ways)
			pol := isol.Policy{WayMasks: []uint64{v, a}}
			if bc.throttle {
				pol.MemBudgets = []isol.MemBudget{{}, {Tokens: 4, RefillCycles: 64}}
			}
			cfg.Isolation = pol
			chip := engine.MustNew(cfg)
			spec, err := workload.ByName("429.mcf")
			if err != nil {
				b.Fatal(err)
			}
			chip.Assign(0, 0, workload.NewGen(spec, 1))
			ps, err := workload.ByName("470.lbm")
			if err != nil {
				b.Fatal(err)
			}
			chip.Assign(0, 1, workload.NewGen(ps, 2))
			chip.Prewarm(60_000)
			chip.Run(10_000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				chip.Run(5000)
			}
			b.StopTimer()
			if c := chip.Counters(0, 0); c.Instructions == 0 {
				b.Fatal("no forward progress")
			}
		})
	}
}

// BenchmarkTable1MachineConfigs regenerates Table I (machine specifications).
func BenchmarkTable1MachineConfigs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newLab()
		r := lab.Table1()
		if len(r.Machines) != 2 || r.String() == "" {
			b.Fatal("Table 1 incomplete")
		}
	}
}

// BenchmarkFig2FunctionalUnitSenCon regenerates Figure 2: per-application
// sensitivity/contentiousness on the functional-unit dimensions.
func BenchmarkFig2FunctionalUnitSenCon(b *testing.B) {
	skipMacroBench(b)
	for i := 0; i < b.N; i++ {
		lab := newLab()
		r, err := lab.Fig2FunctionalUnits()
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Chars) == 0 {
			b.Fatal("no characterizations")
		}
	}
}

// BenchmarkFig3PortUtilizationCDF regenerates Figures 3 and 5: aggregated
// port-utilisation CDFs over all SPEC co-location pairs.
func BenchmarkFig3PortUtilizationCDF(b *testing.B) {
	skipMacroBench(b)
	for i := 0; i < b.N; i++ {
		lab := newLab()
		r, err := lab.Fig3And5PortUtilization()
		if err != nil {
			b.Fatal(err)
		}
		if r.Pairs == 0 {
			b.Fatal("no pairs measured")
		}
		b.ReportMetric(r.Median(4), "port4-median-util")
	}
}

// BenchmarkFig4MemorySenCon regenerates Figure 4: memory-subsystem
// sensitivity/contentiousness.
func BenchmarkFig4MemorySenCon(b *testing.B) {
	skipMacroBench(b)
	for i := 0; i < b.N; i++ {
		lab := newLab()
		if _, err := lab.Fig4MemorySubsystem(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5MemPortUtilizationCDF regenerates the memory-port half of
// the utilisation study (same runs as Figure 3, reported for ports 2/3/4).
func BenchmarkFig5MemPortUtilizationCDF(b *testing.B) {
	skipMacroBench(b)
	for i := 0; i < b.N; i++ {
		lab := newLab()
		r, err := lab.Fig3And5PortUtilization()
		if err != nil {
			b.Fatal(err)
		}
		if r.Median(2) < r.Median(4) {
			// Load ports should dominate the store port (paper Finding).
			b.Log("warning: store port median above load port median at this scale")
		}
	}
}

// BenchmarkFig6SenConSummary regenerates Figure 6: the full
// seven-dimension characterization matrix.
func BenchmarkFig6SenConSummary(b *testing.B) {
	skipMacroBench(b)
	for i := 0; i < b.N; i++ {
		lab := newLab()
		if _, err := lab.Fig6Summary(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7CorrelationMatrix regenerates Figure 7: |Pearson|
// correlations across the 14 Sen/Con dimensions.
func BenchmarkFig7CorrelationMatrix(b *testing.B) {
	skipMacroBench(b)
	for i := 0; i < b.N; i++ {
		lab := newLab()
		r, err := lab.Fig7Correlation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FracBelow80*100, "%pairs<0.8")
	}
}

// BenchmarkFig9RulerValidation regenerates Figure 9's validation: Ruler
// port saturation and working-set/interference linearity.
func BenchmarkFig9RulerValidation(b *testing.B) {
	skipMacroBench(b)
	for i := 0; i < b.N; i++ {
		lab := newLab()
		r, err := lab.Fig9RulerValidation()
		if err != nil {
			b.Fatal(err)
		}
		for _, fu := range r.FU {
			if fu.TargetUtil < 0.999 {
				b.Fatalf("%s target utilisation %.4f", fu.Name, fu.TargetUtil)
			}
		}
	}
}

// BenchmarkFig10SpecSMTPrediction regenerates Figure 10: SMT prediction
// accuracy on SPEC (SMiTe vs the PMU baseline).
func BenchmarkFig10SpecSMTPrediction(b *testing.B) {
	skipMacroBench(b)
	for i := 0; i < b.N; i++ {
		lab := newLab()
		r, err := lab.Fig10SpecSMT()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SmiteEval.MeanAbsError*100, "smite-err-%")
		b.ReportMetric(r.PMUEval.MeanAbsError*100, "pmu-err-%")
	}
}

// BenchmarkFig11SpecCMPPrediction regenerates Figure 11: CMP prediction
// accuracy on SPEC.
func BenchmarkFig11SpecCMPPrediction(b *testing.B) {
	skipMacroBench(b)
	for i := 0; i < b.N; i++ {
		lab := newLab()
		r, err := lab.Fig11SpecCMP()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SmiteEval.MeanAbsError*100, "smite-err-%")
	}
}

// BenchmarkFig12CloudSuitePrediction regenerates Figure 12: CloudSuite
// SMT/CMP prediction accuracy.
func BenchmarkFig12CloudSuitePrediction(b *testing.B) {
	skipMacroBench(b)
	for i := 0; i < b.N; i++ {
		lab := newLab()
		r, err := lab.Fig12CloudSuite()
		if err != nil {
			b.Fatal(err)
		}
		for _, fp := range r.PerPlacement {
			if fp.SmiteErr >= fp.PMUErr {
				b.Log("warning: SMiTe did not beat PMU at this scale")
			}
		}
	}
}

// BenchmarkFig13TailLatencyPrediction regenerates Figure 13: p90 latency
// prediction for the percentile-reporting services.
func BenchmarkFig13TailLatencyPrediction(b *testing.B) {
	skipMacroBench(b)
	for i := 0; i < b.N; i++ {
		lab := newLab()
		r, err := lab.Fig13TailLatency()
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) == 0 {
			b.Fatal("no percentile-reporting services")
		}
	}
}

// BenchmarkFig14UtilizationAvgQoS regenerates Figures 14/15: the
// average-performance-QoS scale-out study.
func BenchmarkFig14UtilizationAvgQoS(b *testing.B) {
	skipMacroBench(b)
	for i := 0; i < b.N; i++ {
		lab := newLab()
		r, err := lab.Fig14And15AvgQoS()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Cells[0.85][cluster.PolicySMiTe].UtilizationGain*100, "gain85-%")
	}
}

// BenchmarkFig15ViolationsAvgQoS re-reports the violation half of the
// average-QoS study (same runs as Figure 14).
func BenchmarkFig15ViolationsAvgQoS(b *testing.B) {
	skipMacroBench(b)
	for i := 0; i < b.N; i++ {
		lab := newLab()
		r, err := lab.Fig14And15AvgQoS()
		if err != nil {
			b.Fatal(err)
		}
		sm := r.Cells[0.90][cluster.PolicySMiTe]
		rd := r.Cells[0.90][cluster.PolicyRandom]
		b.ReportMetric(sm.ViolationFrac*100, "smite-viol-%")
		b.ReportMetric(rd.ViolationFrac*100, "random-viol-%")
	}
}

// BenchmarkFig16UtilizationTailQoS regenerates Figures 16/17: the
// tail-latency-QoS scale-out study.
func BenchmarkFig16UtilizationTailQoS(b *testing.B) {
	skipMacroBench(b)
	for i := 0; i < b.N; i++ {
		lab := newLab()
		r, err := lab.Fig16And17TailQoS()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Cells[0.85][cluster.PolicySMiTe].UtilizationGain*100, "gain85-%")
	}
}

// BenchmarkFig17ViolationsTailQoS re-reports the violation half of the
// tail-QoS study.
func BenchmarkFig17ViolationsTailQoS(b *testing.B) {
	skipMacroBench(b)
	for i := 0; i < b.N; i++ {
		lab := newLab()
		r, err := lab.Fig16And17TailQoS()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Cells[0.90][cluster.PolicyRandom].ViolationFrac*100, "random-viol-%")
	}
}

// BenchmarkFig18TCO regenerates Figure 18: the 3-year TCO analysis.
func BenchmarkFig18TCO(b *testing.B) {
	skipMacroBench(b)
	for i := 0; i < b.N; i++ {
		lab := newLab()
		r, err := lab.Fig18TCO()
		if err != nil {
			b.Fatal(err)
		}
		best := 0.0
		for _, row := range r.Rows {
			if row.Improvement > best {
				best = row.Improvement
			}
		}
		b.ReportMetric(best*100, "best-tco-saving-%")
	}
}

// BenchmarkModelAblation runs the model-comparison ablation: SMiTe NNLS/OLS,
// a Bubble-Up-style single-metric model, and the PMU-baseline family.
func BenchmarkModelAblation(b *testing.B) {
	skipMacroBench(b)
	for i := 0; i < b.N; i++ {
		lab := newLab()
		r, err := lab.ModelAblation()
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 6 {
			b.Fatalf("expected 6 models, got %d", len(r.Rows))
		}
	}
}

// BenchmarkAblationStreamPrefetcher quantifies the stream-prefetcher design
// choice called out in DESIGN.md: the IPC of a sequential-stream workload
// with the prefetcher on versus off.
func BenchmarkAblationStreamPrefetcher(b *testing.B) {
	skipMacroBench(b)
	run := func(prefetch bool) float64 {
		cfg := isa.IvyBridge()
		cfg.Cores = 2
		cfg.StreamPrefetcher = prefetch
		spec, err := workload.ByName("470.lbm")
		if err != nil {
			b.Fatal(err)
		}
		res, err := profile.Solo(cfg, profile.App(spec), profile.FastOptions())
		if err != nil {
			b.Fatal(err)
		}
		return res.AppIPC
	}
	for i := 0; i < b.N; i++ {
		with, without := run(true), run(false)
		b.ReportMetric(with, "ipc-prefetch")
		b.ReportMetric(without, "ipc-noprefetch")
		if with <= without {
			b.Fatal("prefetcher should speed up streaming")
		}
	}
}

// BenchmarkAblationL3Replacement quantifies the L2/L3 random-replacement
// design choice: the co-location degradation cliff of a cache-resident app
// against a thrashing neighbour under LRU versus random replacement.
func BenchmarkAblationL3Replacement(b *testing.B) {
	skipMacroBench(b)
	measure := func(policy isa.ReplacementPolicy) float64 {
		cfg := isa.IvyBridge()
		cfg.Cores = 2
		cfg.L3.Policy = policy
		cfg.L2.Policy = policy
		a, err := workload.ByName("401.bzip2")
		if err != nil {
			b.Fatal(err)
		}
		bb, err := workload.ByName("483.xalancbmk")
		if err != nil {
			b.Fatal(err)
		}
		p := profile.NewProfiler(cfg, profile.FastOptions())
		pm, err := p.MeasurePair(a, bb, profile.SMT)
		if err != nil {
			b.Fatal(err)
		}
		return pm.DegA
	}
	for i := 0; i < b.N; i++ {
		lru, random := measure(isa.PolicyLRU), measure(isa.PolicyRandom)
		b.ReportMetric(lru*100, "deg-lru-%")
		b.ReportMetric(random*100, "deg-random-%")
	}
}

// BenchmarkCheckerOverhead measures the cost of the runtime invariant
// checker (internal/sim/check) on a representative SMT co-location run.
// Every other benchmark in this file runs checker-disabled — the unchecked
// fast path is a single nil comparison per cycle; the checked sub-benchmark
// documents what tests pay for continuous verification at the default
// interval. Target: within ~5% of the unchecked runtime.
func BenchmarkCheckerOverhead(b *testing.B) {
	cfg := isa.IvyBridge()
	cfg.Cores = 2
	mcf, err := workload.ByName("429.mcf")
	if err != nil {
		b.Fatal(err)
	}
	namd, err := workload.ByName("444.namd")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name  string
		check bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			opts := profile.FastOptions()
			opts.Check = mode.check
			for i := 0; i < b.N; i++ {
				res, err := profile.Colocate(cfg, profile.App(namd), profile.App(mcf), profile.SMT, opts)
				if err != nil {
					b.Fatal(err)
				}
				if res.AppIPC <= 0 {
					b.Fatal("no progress")
				}
			}
		})
	}
}

// BenchmarkTraceOverheadDisabled measures the engine hot loop through
// RunContext with observability disabled: background context, no sampler,
// no tracer. That is the exact path every simulation takes when the obs
// subsystem is off, so its ns/op must stay within noise of
// EngineHotLoop/mem-bound-smt (the same workload through plain Run) — the
// hooks are a nil comparison, not a cost. The CI bench job gates this
// number against BENCH_baseline.json.
func BenchmarkTraceOverheadDisabled(b *testing.B) {
	cfg := isa.IvyBridge()
	cfg.Cores = 1
	chip := engine.MustNew(cfg)
	spec, err := workload.ByName("429.mcf")
	if err != nil {
		b.Fatal(err)
	}
	chip.Assign(0, 0, workload.NewGen(spec, 1))
	partner, err := workload.ByName("470.lbm")
	if err != nil {
		b.Fatal(err)
	}
	chip.Assign(0, 1, workload.NewGen(partner, 2))
	chip.Prewarm(60_000)
	chip.Run(10_000)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := chip.RunContext(ctx, 5000); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if c := chip.Counters(0, 0); c.Instructions == 0 {
		b.Fatal("no forward progress")
	}
}

// BenchmarkQosdPredict measures the smited serving hot path as a
// scheduler client sees it: HTTP round-trip, JSON codec, registry
// snapshot and the memoized Equation 3 evaluation. One op is a burst of
// 256 keep-alive requests, so single-iteration CI runs (-benchtime 1x)
// still average over enough round-trips to gate on. The CI bench job
// compares ns/op against BENCH_baseline.json.
func BenchmarkQosdPredict(b *testing.B) {
	const burst = 256
	victim := smite.Characterization{App: "web-search", SoloIPC: 1.2}
	aggr := smite.Characterization{App: "429.mcf", SoloIPC: 0.5}
	var coef [smite.NumDimensions]float64
	for d := range victim.Sen {
		victim.Sen[d] = 0.05 * float64(d+1)
		aggr.Con[d] = 0.1 * float64(d+1)
		coef[d] = 0.2
	}
	reg := qosd.NewRegistry()
	reg.AddProfiles([]smite.Characterization{victim, aggr})
	reg.SetModel(smite.NewModel(coef, 0.01))
	ts := httptest.NewServer(qosd.NewServer(reg, qosd.Config{}).Handler())
	defer ts.Close()
	c := qosd.NewClient(ts.URL, ts.Client())
	ctx := context.Background()
	req := qosd.PredictRequest{Victim: "web-search", Aggressor: "429.mcf"}
	if _, err := c.Predict(ctx, req); err != nil {
		b.Fatal(err) // warm the connection and the prediction memo
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < burst; j++ {
			if _, err := c.Predict(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkQosdPredictTraced is BenchmarkQosdPredict with per-request span
// tracing on (?trace=1 against an EnableTrace server): every request
// allocates a tracer, records the route, predict and memo spans, and
// renders the Chrome trace for /debug/trace/last. The delta against
// QosdPredict is the full per-request cost of tracing; the CI bench job
// gates it against BENCH_baseline.json so the traced path cannot silently
// balloon.
func BenchmarkQosdPredictTraced(b *testing.B) {
	const burst = 256
	victim := smite.Characterization{App: "web-search", SoloIPC: 1.2}
	aggr := smite.Characterization{App: "429.mcf", SoloIPC: 0.5}
	var coef [smite.NumDimensions]float64
	for d := range victim.Sen {
		victim.Sen[d] = 0.05 * float64(d+1)
		aggr.Con[d] = 0.1 * float64(d+1)
		coef[d] = 0.2
	}
	reg := qosd.NewRegistry()
	reg.AddProfiles([]smite.Characterization{victim, aggr})
	reg.SetModel(smite.NewModel(coef, 0.01))
	ts := httptest.NewServer(qosd.NewServer(reg, qosd.Config{EnableTrace: true}).Handler())
	defer ts.Close()
	// Raw POSTs: the typed client has no query-parameter surface.
	url := ts.URL + "/v1/predict?trace=1"
	const body = `{"victim":"web-search","aggressor":"429.mcf"}`
	post := func() error {
		resp, err := ts.Client().Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("predict = %d", resp.StatusCode)
		}
		return nil
	}
	if err := post(); err != nil {
		b.Fatal(err) // warm the connection and the prediction memo
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < burst; j++ {
			if err := post(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCharacterizeAllParallel measures the parallel characterization
// scheduler end to end through the public API: a fresh System (fresh
// simulation cache, so every cell genuinely simulates) characterizes four
// SPEC applications at worker counts 1 and 8. The flat-cell fan-out in
// internal/profile gives ~44 independent cells, so on a multi-core runner
// the workers-8 sub-benchmark should approach the core count's speedup
// over workers-1; on a single-core machine the two converge. The CI bench
// job gates ns/op of both against BENCH_baseline.json, catching both a
// slowdown of the simulation substrate and a scheduler regression that
// serializes the fan-out.
func BenchmarkCharacterizeAllParallel(b *testing.B) {
	skipMacroBench(b)
	var specs []*smite.Spec
	for _, n := range []string{"444.namd", "429.mcf", "453.povray", "470.lbm"} {
		s, err := workload.ByName(n)
		if err != nil {
			b.Fatal(err)
		}
		specs = append(specs, s)
	}
	// Sub-benchmark names must not end in "-<digits>": benchci strips a
	// trailing -N as the GOMAXPROCS suffix when normalizing names.
	for _, bc := range []struct {
		name    string
		workers int
	}{{"seq", 1}, {"par8", 8}} {
		workers := bc.workers
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, err := smite.New(smite.IvyBridge.Config(),
					smite.WithOptions(smite.FastOptions()),
					smite.WithParallelism(workers))
				if err != nil {
					b.Fatal(err)
				}
				chars, err := sys.CharacterizeAll(specs, smite.SMT)
				if err != nil {
					b.Fatal(err)
				}
				if len(chars) != len(specs) {
					b.Fatalf("got %d characterizations, want %d", len(chars), len(specs))
				}
			}
		})
	}
}

// fitBenchSpecs resolves the two-application working set shared by the
// surrogate benchmarks and the speedup acceptance test.
func fitBenchSpecs(tb testing.TB) []*smite.Spec {
	tb.Helper()
	var specs []*smite.Spec
	for _, n := range []string{"444.namd", "429.mcf"} {
		s, err := workload.ByName(n)
		if err != nil {
			tb.Fatal(err)
		}
		specs = append(specs, s)
	}
	return specs
}

// TestSurrogateSpeedup pins the tentpole's acceptance figure: once a set
// is fitted (the one-time cost a profile store amortizes away), answering
// the same characterization + prediction queries from the surrogate must
// be at least 10x faster than the engine-only baseline. The real measured
// gap is many orders of magnitude (nanoseconds against seconds), so the
// 10x assert is lenient enough that CI scheduling noise cannot flip it.
func TestSurrogateSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("engine baseline characterization in short mode")
	}
	specs := fitBenchSpecs(t)
	sys, err := smite.New(smite.IvyBridge.Config(), smite.WithOptions(smite.FastOptions()))
	if err != nil {
		t.Fatal(err)
	}
	set, err := sys.Fit(context.Background(), specs, smite.SMT, smite.FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var coef [smite.NumDimensions]float64
	for d := range coef {
		coef[d] = 0.2
	}
	m := smite.NewModel(coef, 0.01)

	// Engine-only baseline: a fresh System (cold caches) measures the full
	// characterization the decision path would otherwise need.
	start := time.Now()
	fresh, err := smite.New(smite.IvyBridge.Config(), smite.WithOptions(smite.FastOptions()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.CharacterizeAll(specs, smite.SMT); err != nil {
		t.Fatal(err)
	}
	engineTime := time.Since(start)

	const queries = 100
	start = time.Now()
	for i := 0; i < queries; i++ {
		if chars := set.Characterizations(); len(chars) != len(specs) {
			t.Fatalf("got %d characterizations, want %d", len(chars), len(specs))
		}
		if _, err := m.PredictSurrogate(set, "444.namd", "429.mcf"); err != nil {
			t.Fatal(err)
		}
	}
	surrogateTime := time.Since(start) / queries

	t.Logf("engine baseline %v, surrogate %v per query (%.0fx)",
		engineTime, surrogateTime, float64(engineTime)/float64(surrogateTime))
	if engineTime < 10*surrogateTime {
		t.Errorf("surrogate path is only %.1fx faster than the engine baseline (%v vs %v), want >= 10x",
			float64(engineTime)/float64(surrogateTime), surrogateTime, engineTime)
	}
}

// BenchmarkSurrogatePredict measures the surrogate tier's answer latency:
// a set is fitted once (setup, not timed) and then queried through the
// same Model.PredictSurrogate path qosd serves. The whole point of the
// tier is microsecond answers, so the CI bench job gates this tightly —
// the acceptance target is <10 µs/op.
func BenchmarkSurrogatePredict(b *testing.B) {
	specs := fitBenchSpecs(b)
	sys, err := smite.New(smite.IvyBridge.Config(), smite.WithOptions(smite.FastOptions()))
	if err != nil {
		b.Fatal(err)
	}
	set, err := sys.Fit(context.Background(), specs, smite.SMT, smite.FitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	var coef [smite.NumDimensions]float64
	for d := range coef {
		coef[d] = 0.2
	}
	m := smite.NewModel(coef, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred, err := m.PredictSurrogate(set, "444.namd", "429.mcf")
		if err != nil {
			b.Fatal(err)
		}
		if pred.Bound < 0 {
			b.Fatal("negative bound")
		}
	}
}

// BenchmarkCharacterizeBatched measures the batched fitter sweep end to
// end: one fresh System per iteration fits both applications across the
// standard intensity grid, so every (dimension, intensity) cell simulates
// through the per-worker batched engine path with amortized setup. Gated
// against BENCH_baseline.json alongside CharacterizeAllParallel, its
// unbatched single-intensity counterpart.
func BenchmarkCharacterizeBatched(b *testing.B) {
	skipMacroBench(b)
	specs := fitBenchSpecs(b)
	for i := 0; i < b.N; i++ {
		sys, err := smite.New(smite.IvyBridge.Config(),
			smite.WithOptions(smite.FastOptions()),
			smite.WithParallelism(8))
		if err != nil {
			b.Fatal(err)
		}
		set, err := sys.Fit(context.Background(), specs, smite.SMT, smite.FitOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(set.Models) != len(specs) {
			b.Fatalf("got %d models, want %d", len(set.Models), len(specs))
		}
	}
}

// BenchmarkDynamicScheduler exercises the dynamic (arrival/departure)
// cluster study extension on a synthetic degradation table.
func BenchmarkDynamicScheduler(b *testing.B) {
	tbl := cluster.NewTable([]string{"svc"}, []string{"quiet", "noisy"}, 6)
	for n := 1; n <= 6; n++ {
		tbl.Set("svc", "quiet", n, cluster.Entry{Actual: 0.01 * float64(n), Predicted: 0.01 * float64(n)})
		tbl.Set("svc", "noisy", n, cluster.Entry{Actual: 0.12 * float64(n), Predicted: 0.12 * float64(n)})
	}
	study := &cluster.DynamicStudy{
		Table: &cluster.Study{
			Table:             tbl,
			ServersPerApp:     1000,
			ThreadsPerServer:  6,
			ContextsPerServer: 12,
			Seed:              3,
		},
		ArrivalRate:  200,
		MeanDuration: 5,
		Horizon:      50,
		Seed:         9,
	}
	for i := 0; i < b.N; i++ {
		r, err := study.Run(cluster.PolicySMiTe, 0.90)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanUtilization*100, "mean-util-%")
	}
}

// clusterSimBench assembles a discrete-event cluster run on a synthetic
// co-location world: surrogate tier first, measured-table fallback, QoS
// surface precomputed once through the Predictor seam. Shared setup for
// the two cluster-scale benchmarks below.
func clusterSimBench(b *testing.B, machines int, arrival float64) (cluster.SimConfig, [][]clusterworkload.Event) {
	b.Helper()
	const nLat, nBatch, maxInst = 3, 4, 6
	set, tbl, err := cluster.SyntheticWorld(nLat, nBatch, maxInst, 23)
	if err != nil {
		b.Fatal(err)
	}
	pred := cluster.NewTieredPredictor(
		&cluster.SurrogatePredictor{Set: set, Capacity: maxInst},
		&cluster.TablePredictor{Table: tbl},
	)
	pt, err := cluster.BuildPredTable(context.Background(), tbl, nil, cluster.QoSAvg, pred, 0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := cluster.SimConfig{
		Workload: clusterworkload.Config{
			Machines: machines, Horizon: 1,
			Lats: nLat, Batches: nBatch, Seed: 23,
			ArrivalRate:  arrival,
			MeanDuration: 0.005,
			Diurnal:      0.4,
			BurstProb:    0.1, BurstFactor: 2.5,
			Drift: 0.2,
			Churn: 0.02,
		},
		Shards:            16,
		Policy:            cluster.PolicySMiTe,
		Target:            0.92,
		ThreadsPerServer:  6,
		ContextsPerServer: 12,
		Table:             pt,
	}
	events, err := cluster.GenerateEvents(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return cfg, events
}

// BenchmarkClusterSim10k is the warehouse-scale acceptance number as a
// gated benchmark: a 10k-machine fleet under temporal arrivals, churn and
// contention-aware placement, ~300k events per iteration fanned across
// all cores. events/sec is the headline custom metric; ns/op and
// allocs/op are gated by benchci against BENCH_baseline.json.
func BenchmarkClusterSim10k(b *testing.B) {
	cfg, events := clusterSimBench(b, 10_000, 150_000)
	b.ReportAllocs()
	b.ResetTimer()
	totalEvents := 0
	for i := 0; i < b.N; i++ {
		res, err := cluster.RunSim(context.Background(), cfg, events, 0)
		if err != nil {
			b.Fatal(err)
		}
		totalEvents += res.Events
	}
	b.StopTimer()
	b.ReportMetric(float64(totalEvents)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkClusterPlacementIncremental isolates the incremental placement
// path: a dense arrival stream on a small fleet, sequential execution, so
// ns/op tracks the per-decision cost of the occupancy-bucket admission
// scan rather than shard fan-out overheads.
func BenchmarkClusterPlacementIncremental(b *testing.B) {
	cfg, events := clusterSimBench(b, 200, 40_000)
	cfg.Workload.Churn = 0
	events, err := cluster.GenerateEvents(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	decisions := 0
	for i := 0; i < b.N; i++ {
		res, err := cluster.RunSim(context.Background(), cfg, events, 1)
		if err != nil {
			b.Fatal(err)
		}
		decisions += res.Arrived
	}
	b.StopTimer()
	b.ReportMetric(float64(decisions)/b.Elapsed().Seconds(), "decisions/sec")
}

// BenchmarkQosdAdmit measures the full /v1/admit round trip: the tiered
// prediction plus the Eq. 6 admission check and the saturation analyzer's
// bookkeeping, over a keep-alive connection in bursts of 256 like
// QosdPredict. The delta against QosdPredict is the per-decision cost of
// the SLO gate itself.
func BenchmarkQosdAdmit(b *testing.B) {
	const burst = 256
	victim := smite.Characterization{App: "web-search", SoloIPC: 1.2}
	aggr := smite.Characterization{App: "429.mcf", SoloIPC: 0.5}
	var coef [smite.NumDimensions]float64
	for d := range victim.Sen {
		victim.Sen[d] = 0.05 * float64(d+1)
		aggr.Con[d] = 0.1 * float64(d+1)
		coef[d] = 0.2
	}
	reg := qosd.NewRegistry()
	reg.AddProfiles([]smite.Characterization{victim, aggr})
	reg.SetModel(smite.NewModel(coef, 0.01))
	slo := &qosd.SLOConfig{Classes: qosd.DefaultSLOClasses(), Headroom: 0.1}
	ts := httptest.NewServer(qosd.NewServer(reg, qosd.Config{SLO: slo}).Handler())
	defer ts.Close()
	c := qosd.NewClient(ts.URL, ts.Client())
	ctx := context.Background()
	req := qosd.AdmitRequest{
		Victim: "web-search", Aggressor: "429.mcf", Class: "standard",
		Queue: qosd.QueueSpec{Mu: 1000, Lambda: 600},
	}
	if _, err := c.Admit(ctx, req); err != nil {
		b.Fatal(err) // warm the connection and the prediction memo
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < burst; j++ {
			if _, err := c.Admit(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkClusterSimSLOPolicy is BenchmarkClusterSim10k under the SLO
// admission policy: the same 10k-machine fleet with placement gated by
// the precomputed per-cell admission surface instead of the QoS floor.
// The delta against ClusterSim10k is the cost of building the gate plus
// any per-decision difference in the placement scan.
func BenchmarkClusterSimSLOPolicy(b *testing.B) {
	cfg, events := clusterSimBench(b, 10_000, 150_000)
	cfg.Policy = cluster.PolicySLO
	cfg.SLO = &cluster.SLOSimParams{
		Classes: []cluster.SLOSimClass{
			{Name: "critical", Budget: 0.020, Percentile: 0.95, Mu: 1000, Lambda: 600},
			{Name: "standard", Budget: 0.060, Percentile: 0.95, Mu: 1000, Lambda: 600},
			{Name: "sheddable", Budget: 0.150, Percentile: 0.90, Mu: 1000, Lambda: 700},
		},
		Headroom: 0.1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	totalEvents := 0
	for i := 0; i < b.N; i++ {
		res, err := cluster.RunSim(context.Background(), cfg, events, 0)
		if err != nil {
			b.Fatal(err)
		}
		totalEvents += res.Events
	}
	b.StopTimer()
	b.ReportMetric(float64(totalEvents)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkClusterSimIsolation is the SLO-policy benchmark with the
// hardware enforcement ladder engaged: same 10k-machine fleet and event
// stream, PolicyIsolation with the stock four-level ladder. The gate pins
// the cost of the extra (gen, level) bucket dimensions and the
// escalate-before-migrate pass in the placement hot path.
func BenchmarkClusterSimIsolation(b *testing.B) {
	cfg, events := clusterSimBench(b, 10_000, 150_000)
	cfg.Policy = cluster.PolicyIsolation
	cfg.SLO = &cluster.SLOSimParams{
		Classes: []cluster.SLOSimClass{
			{Name: "critical", Budget: 0.020, Percentile: 0.95, Mu: 1000, Lambda: 600},
			{Name: "standard", Budget: 0.060, Percentile: 0.95, Mu: 1000, Lambda: 600},
			{Name: "sheddable", Budget: 0.150, Percentile: 0.90, Mu: 1000, Lambda: 700},
		},
		Headroom: 0.1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	totalEvents := 0
	for i := 0; i < b.N; i++ {
		res, err := cluster.RunSim(context.Background(), cfg, events, 0)
		if err != nil {
			b.Fatal(err)
		}
		totalEvents += res.Events
	}
	b.StopTimer()
	b.ReportMetric(float64(totalEvents)/b.Elapsed().Seconds(), "events/sec")
}

// benchSource is a no-measurement re-characterization source for
// BenchmarkClosedLoopStep: it hands back fresh copies of the synthetic
// world's surrogate models so the benchmark isolates the controller's
// own cost (flag bookkeeping, model merge, atomic swap, detector reset)
// from the engine sweep a real source would run.
type benchSource struct {
	models map[string]*surrogate.Model
}

func (s *benchSource) Recharacterize(_ context.Context, apps []string) (map[string]*surrogate.Model, error) {
	out := make(map[string]*surrogate.Model, len(apps))
	for _, app := range apps {
		m := *s.models[app]
		out[app] = &m
	}
	return out, nil
}

// BenchmarkPredictorSeam measures the unified Predict seam end to end:
// one TieredPredictor.Predict call per (lat, batch, n) cell of a
// synthetic world, covering both the surrogate hit path (closed-form
// curves plus the certificate check) and the table fallback. ns/op is
// per full sweep; predictions/sec is the headline custom metric.
func BenchmarkPredictorSeam(b *testing.B) {
	const nLat, nBatch, maxInst = 4, 6, 6
	set, tbl, err := cluster.SyntheticWorld(nLat, nBatch, maxInst, 7)
	if err != nil {
		b.Fatal(err)
	}
	tiered := cluster.NewTieredPredictor(
		&cluster.SurrogatePredictor{Set: set, Capacity: maxInst},
		&cluster.TablePredictor{Table: tbl},
	)
	lats := make([]string, nLat)
	for i := range lats {
		lats[i] = fmt.Sprintf("latsvc-%02d", i)
	}
	batches := make([]string, nBatch)
	for i := range batches {
		batches[i] = fmt.Sprintf("batch-%02d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	calls := 0
	for i := 0; i < b.N; i++ {
		for _, lat := range lats {
			for _, batch := range batches {
				for n := 1; n <= maxInst; n++ {
					if _, err := tiered.Predict(lat, batch, n); err != nil {
						b.Fatal(err)
					}
					calls++
				}
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(calls)/b.Elapsed().Seconds(), "predictions/sec")
}

// BenchmarkClosedLoopStep measures one full closed-loop cycle: stream
// drift-confirming observations into the controller, then Step —
// re-characterize the flagged app through a canned source, hot-swap the
// refreshed set behind the tiered predictor, and reset the detector.
// ns/op is the per-cycle actuation cost excluding any real engine sweep.
func BenchmarkClosedLoopStep(b *testing.B) {
	const nLat, nBatch, maxInst = 2, 2, 4
	set, tbl, err := cluster.SyntheticWorld(nLat, nBatch, maxInst, 11)
	if err != nil {
		b.Fatal(err)
	}
	tiered := cluster.NewTieredPredictor(
		&cluster.SurrogatePredictor{Set: set, Capacity: maxInst},
		&cluster.TablePredictor{Table: tbl},
	)
	src := &benchSource{models: make(map[string]*surrogate.Model, len(set.Models))}
	for app, m := range set.Models {
		refreshed := *m
		src.models[app] = &refreshed
	}
	c := ctrl.New(ctrl.Config{
		Detector: ctrl.DetectorConfig{MinSamples: 2, Threshold: 0.1},
		Source:   src,
		Tiered:   tiered,
	})
	ctx := context.Background()
	pred := cluster.Prediction{Deg: 0.1, Bound: 0.01, Tier: cluster.TierSurrogate}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		confirmed := false
		for j := 0; j < 10 && !confirmed; j++ {
			confirmed = c.Observe("latsvc-00", 3, 0.5, pred)
		}
		if !confirmed {
			b.Fatal("drift never confirmed")
		}
		if _, err := c.Step(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
