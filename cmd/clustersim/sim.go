package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	clworkload "repro/internal/cluster/workload"
	"repro/internal/isol"
	"repro/internal/qosd"
	"repro/internal/sim/isa"
)

// FlagError reports a flag value that fails validation. main exits 2 on
// any error; tests assert the flag name through errors.As, so validation
// failures stay distinguishable from runtime ones.
type FlagError struct {
	Flag   string
	Value  string
	Reason string
}

func (e *FlagError) Error() string {
	return fmt.Sprintf("invalid -%s value %q: %s", e.Flag, e.Value, e.Reason)
}

// simOptions carries the discrete-event mode's parsed flags.
type simOptions struct {
	machines    int
	duration    float64
	churn       float64
	arrival     float64
	policy      string
	target      float64
	shards      int
	parallelism int
	seed        uint64
	traceOut    string
	replay      string
	summaryJSON string
	qos         string

	sloClasses  string
	sloHeadroom float64
	sloMu       float64
	sloLambda   float64

	driftAt     float64
	driftFactor float64

	machineMix string
	isolSpec   string
	alloc      string

	// slo is the parsed -slo-* flag set, filled by validate when the
	// policy is slo, closedloop or isolation.
	slo *cluster.SLOSimParams
	// mix is the parsed -machine-mix flag; empty means homogeneous.
	mix []mixGen
	// isolLevels is the parsed -isol ladder; nil means the stock one.
	isolLevels []isol.Setting
}

// mixGen is one -machine-mix entry resolved against the isa generation
// registry: the weight and the generation's server geometry (one latency
// thread per core, every hardware context placeable).
type mixGen struct {
	name              string
	count             int
	threads, contexts int
}

// validate rejects unusable flag values with typed errors before any
// work starts. Replay mode takes its workload from the trace header, so
// only the execution knobs are checked there.
func (o *simOptions) validate() error {
	if o.replay == "" {
		if o.machines <= 0 {
			return &FlagError{Flag: "machines", Value: fmt.Sprint(o.machines), Reason: "fleet size must be positive"}
		}
		if o.duration <= 0 {
			return &FlagError{Flag: "duration", Value: fmt.Sprint(o.duration), Reason: "simulated horizon must be positive"}
		}
		if o.churn < 0 {
			return &FlagError{Flag: "churn", Value: fmt.Sprint(o.churn), Reason: "churn rate must be non-negative"}
		}
		if o.arrival < 0 {
			return &FlagError{Flag: "arrival", Value: fmt.Sprint(o.arrival), Reason: "arrival rate must be non-negative (0 = 30 jobs/machine)"}
		}
		if o.target <= 0 || o.target > 1 {
			return &FlagError{Flag: "target", Value: fmt.Sprint(o.target), Reason: "QoS target must be in (0, 1]"}
		}
		switch o.policy {
		case "smite", "oracle", "random":
		case "slo", "closedloop", "isolation":
			slo, err := o.sloParams()
			if err != nil {
				return err
			}
			o.slo = slo
		default:
			return &FlagError{Flag: "policy", Value: o.policy, Reason: "want smite, oracle, random, slo, closedloop or isolation"}
		}
		if o.isolSpec != "" && o.policy != "isolation" {
			return &FlagError{Flag: "isol", Value: o.isolSpec, Reason: "isolation ladder needs -policy=isolation"}
		}
		if o.policy == "isolation" {
			if o.driftFactor > 0 {
				return &FlagError{Flag: "drift-factor", Value: fmt.Sprint(o.driftFactor), Reason: "drift injection does not compose with -policy=isolation"}
			}
			levels, err := parseIsolLadder(o.isolSpec)
			if err != nil {
				return err
			}
			o.isolLevels = levels
		}
		if o.alloc != "" {
			if _, err := cluster.AllocPolicyByName(o.alloc); err != nil {
				return &FlagError{Flag: "alloc", Value: o.alloc, Reason: err.Error()}
			}
			if o.policy == "random" {
				return &FlagError{Flag: "alloc", Value: o.alloc, Reason: "allocation scoring has no effect under -policy=random"}
			}
		}
		if o.machineMix != "" {
			mix, err := parseMachineMix(o.machineMix)
			if err != nil {
				return err
			}
			if o.policy == "closedloop" {
				return &FlagError{Flag: "machine-mix", Value: o.machineMix, Reason: "closedloop does not support heterogeneous machine generations yet"}
			}
			if o.driftFactor > 0 {
				return &FlagError{Flag: "machine-mix", Value: o.machineMix, Reason: "drift injection does not support heterogeneous machine generations yet"}
			}
			o.mix = mix
		}
		if o.driftFactor < 0 {
			return &FlagError{Flag: "drift-factor", Value: fmt.Sprint(o.driftFactor), Reason: "drift factor must be non-negative (0 = no drift)"}
		}
		if o.driftFactor > 0 && o.driftAt < 0 {
			return &FlagError{Flag: "drift-at", Value: fmt.Sprint(o.driftAt), Reason: "drift time must be non-negative"}
		}
		if o.qos != "avg" {
			return &FlagError{Flag: "qos", Value: o.qos, Reason: "the synthetic sim world only defines avg QoS"}
		}
		if o.shards < 0 {
			return &FlagError{Flag: "shards", Value: fmt.Sprint(o.shards), Reason: "shard count must be non-negative"}
		}
	}
	if o.parallelism < 0 {
		return &FlagError{Flag: "parallelism", Value: fmt.Sprint(o.parallelism), Reason: "worker count must be non-negative"}
	}
	return nil
}

func (o *simOptions) policyKind() cluster.PolicyKind {
	switch o.policy {
	case "oracle":
		return cluster.PolicyOracle
	case "random":
		return cluster.PolicyRandom
	case "slo":
		return cluster.PolicySLO
	case "closedloop":
		return cluster.PolicyClosedLoop
	case "isolation":
		return cluster.PolicyIsolation
	}
	return cluster.PolicySMiTe
}

// parseMachineMix resolves "gen=weight,..." against the isa machine
// generation registry, mapping malformed entries onto typed FlagErrors.
// Weights are relative machine counts: "snb=3,ivb=2" means 3 Sandy
// Bridge-EN servers for every 2 Ivy Bridge ones, assigned round-robin by
// global machine ID.
func parseMachineMix(spec string) ([]mixGen, error) {
	var mix []mixGen
	seen := map[string]bool{}
	for _, field := range strings.Split(spec, ",") {
		name, weight, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, &FlagError{Flag: "machine-mix", Value: spec, Reason: fmt.Sprintf("entry %q is not gen=weight", field)}
		}
		name = strings.TrimSpace(name)
		cfg, err := isa.MachineGenByName(name)
		if err != nil {
			return nil, &FlagError{Flag: "machine-mix", Value: spec, Reason: err.Error()}
		}
		if seen[name] {
			return nil, &FlagError{Flag: "machine-mix", Value: spec, Reason: fmt.Sprintf("generation %q listed twice", name)}
		}
		seen[name] = true
		n, err := strconv.Atoi(strings.TrimSpace(weight))
		if err != nil || n <= 0 {
			return nil, &FlagError{Flag: "machine-mix", Value: spec, Reason: fmt.Sprintf("weight %q must be a positive integer", weight)}
		}
		mix = append(mix, mixGen{name: name, count: n, threads: cfg.Cores, contexts: cfg.Contexts()})
	}
	if len(mix) == 0 {
		return nil, &FlagError{Flag: "machine-mix", Value: spec, Reason: "empty mix"}
	}
	return mix, nil
}

// parseIsolLadder parses "name:degscale:tax,..." into the enforcement
// ladder above the implicit level-0 identity, then runs the shared ladder
// validation (monotone DegScale down, tax up). Empty means the stock
// isol.DefaultSettings ladder.
func parseIsolLadder(spec string) ([]isol.Setting, error) {
	if spec == "" {
		return nil, nil
	}
	levels := []isol.Setting{{Name: "off", ThrottleFrac: 1, DegScale: 1}}
	for _, field := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(field), ":")
		if len(parts) != 3 {
			return nil, &FlagError{Flag: "isol", Value: spec, Reason: fmt.Sprintf("entry %q is not name:degscale:tax", field)}
		}
		scale, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, &FlagError{Flag: "isol", Value: spec, Reason: fmt.Sprintf("degscale %q: %v", parts[1], err)}
		}
		tax, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, &FlagError{Flag: "isol", Value: spec, Reason: fmt.Sprintf("tax %q: %v", parts[2], err)}
		}
		levels = append(levels, isol.Setting{Name: strings.TrimSpace(parts[0]), ThrottleFrac: 1, DegScale: scale, ThroughputTax: tax})
	}
	if err := isol.ValidateSettings(levels); err != nil {
		return nil, &FlagError{Flag: "isol", Value: spec, Reason: err.Error()}
	}
	return levels, nil
}

// sloParams parses the -slo-* flags into simulation parameters, mapping
// every malformed value onto a typed FlagError so smited and clustersim
// agree on the class grammar (qosd.ParseSLOClasses) and on exiting 2.
func (o *simOptions) sloParams() (*cluster.SLOSimParams, error) {
	classes, err := qosd.ParseSLOClasses(o.sloClasses)
	if err != nil {
		return nil, &FlagError{Flag: "slo-classes", Value: o.sloClasses, Reason: err.Error()}
	}
	if o.sloHeadroom < 0 || o.sloHeadroom >= 1 {
		return nil, &FlagError{Flag: "slo-headroom", Value: fmt.Sprint(o.sloHeadroom), Reason: "headroom must be in [0,1)"}
	}
	if o.sloMu <= 0 {
		return nil, &FlagError{Flag: "slo-mu", Value: fmt.Sprint(o.sloMu), Reason: "service rate must be positive"}
	}
	if o.sloLambda <= 0 {
		return nil, &FlagError{Flag: "slo-lambda", Value: fmt.Sprint(o.sloLambda), Reason: "arrival rate must be positive"}
	}
	p := &cluster.SLOSimParams{Headroom: o.sloHeadroom}
	for _, cl := range classes {
		p.Classes = append(p.Classes, cluster.SLOSimClass{
			Name: cl.Name, Budget: cl.Budget, Percentile: cl.Percentile,
			Mu: o.sloMu, Lambda: o.sloLambda,
		})
	}
	if err := p.Validate(); err != nil {
		return nil, &FlagError{Flag: "slo-classes", Value: o.sloClasses, Reason: err.Error()}
	}
	return p, nil
}

// Synthetic-world geometry for -sim runs: a 12-context, 6-thread server
// (the study's Sandy Bridge-EN shape) whose idle contexts take up to 6
// batch instances, over a 4×6 application population.
const (
	simLats     = 4
	simBatches  = 6
	simThreads  = 6
	simContexts = 12
)

// runClusterSim executes the discrete-event mode: either a fresh
// synthetic-world run (optionally recorded with -trace-out) or a byte-
// exact replay of a recorded trace.
func runClusterSim(ctx context.Context, o simOptions, w io.Writer) error {
	if err := o.validate(); err != nil {
		return err
	}

	var cfg cluster.SimConfig
	var events [][]clworkload.Event
	if o.replay != "" {
		f, err := os.Open(o.replay)
		if err != nil {
			return err
		}
		cfg, events, err = cluster.ReadTrace(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "replaying %s: %d machines over %g time units\n", o.replay, cfg.Workload.Machines, cfg.Workload.Horizon)
	} else {
		var err error
		if cfg, err = o.simConfig(); err != nil {
			return err
		}
		if events, err = cluster.GenerateEvents(cfg); err != nil {
			return err
		}
	}

	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		err = cluster.WriteTrace(f, cfg, events)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "trace recorded to %s\n", o.traceOut)
	}

	start := time.Now()
	res, err := cluster.RunSim(ctx, cfg, events, o.parallelism)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Fprintf(w, "discrete-event cluster sim: %d machines, %d shards, policy %v, target %.0f%%\n",
		cfg.Workload.Machines, len(events), res.Policy, res.Target*100)
	fmt.Fprintf(w, "%d events in %v (%.0f events/sec)\n", res.Events, elapsed.Round(time.Millisecond),
		float64(res.Events)/elapsed.Seconds())
	fmt.Fprintf(w, "jobs: arrived %d, placed %d, rejected %d, departed %d, evicted %d\n",
		res.Arrived, res.Placed, res.Rejected, res.Departed, res.Evicted)
	fmt.Fprintf(w, "fleet: %d -> %d machines (ups %d, downs %d)\n",
		res.MachinesStart, res.MachinesEnd, res.MachineUps, res.MachineDowns)
	fmt.Fprintf(w, "utilisation: %.1f%% -> %.1f%% mean (peak %.1f%%), violations %d (%.2f%% of placements)\n",
		res.BaselineUtilization*100, res.MeanUtilization*100, res.PeakUtilization*100,
		res.Violations, res.ViolationFrac*100)

	summary := res.Summary()
	fmt.Fprintf(w, "saturation: %.1f%% of arrivals rejected -> %s\n",
		summary.Saturation.RejectionFrac*100, summary.Saturation.Signal)
	if summary.ClosedLoop != nil {
		fmt.Fprintf(w, "closed loop: %d drift detections, %d re-characterizations, %d migrations (%d failed)\n",
			res.Detections, res.Recharacterized, res.Migrations, res.MigrationsFailed)
	}
	if summary.Isolation.Enabled {
		fmt.Fprintf(w, "isolation: %d-level ladder, %d escalations, %d violations resolved in place, %d migrations, throughput tax %.2f%%\n",
			summary.Isolation.Levels, summary.Isolation.Escalations, summary.Isolation.Resolved,
			summary.Isolation.Migrations, summary.Isolation.ThroughputTax*100)
	}

	// Comparison policies ship their own control: the same event streams
	// rerun with violation accounting held identical — the greedy
	// QoS-floor policy for -policy=slo, the static SLO gate for
	// -policy=closedloop and -policy=isolation — so the summary carries a
	// side-by-side.
	if cfg.Policy == cluster.PolicySLO || cfg.Policy == cluster.PolicyClosedLoop || cfg.Policy == cluster.PolicyIsolation {
		control := cfg
		label := "greedy"
		switch cfg.Policy {
		case cluster.PolicyClosedLoop:
			control.Policy = cluster.PolicySLO
			label = "static gate"
		case cluster.PolicyIsolation:
			control.Policy = cluster.PolicySLO
			control.Isol = nil
			label = "no-enforcement gate"
		default:
			control.Policy = cluster.PolicySMiTe
		}
		base, err := cluster.RunSim(ctx, control, events, o.parallelism)
		if err != nil {
			return err
		}
		summary.Baseline = base.BaselineSummary()
		fmt.Fprintf(w, "vs %s (%v): placed %d vs %d, violations %.2f%% vs %.2f%%, mean utilisation %.1f%% vs %.1f%%\n",
			label, base.Policy, res.Placed, base.Placed,
			res.ViolationFrac*100, base.ViolationFrac*100,
			res.MeanUtilization*100, base.MeanUtilization*100)
	}

	if o.summaryJSON != "" {
		data, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if o.summaryJSON == "-" {
			_, err = w.Write(data)
		} else {
			err = os.WriteFile(o.summaryJSON, data, 0o644)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// simConfig assembles the synthetic-world simulation: analytic surrogate
// curves as the first prediction tier, the seeded measured table as the
// fallback, and the QoS surface precomputed once through that seam.
func (o *simOptions) simConfig() (cluster.SimConfig, error) {
	const maxInst = simContexts - simThreads
	arrival := o.arrival
	if arrival == 0 {
		arrival = 30 * float64(o.machines)
	}
	cfg := cluster.SimConfig{
		Workload: clworkload.Config{
			Machines: o.machines, Horizon: o.duration,
			Lats: simLats, Batches: simBatches, Seed: o.seed,
			ArrivalRate:  arrival,
			MeanDuration: 0.05,
			Diurnal:      0.4,
			BurstProb:    0.1, BurstFactor: 2.5,
			Drift: 0.2,
			Churn: o.churn,
		},
		Shards:            o.shards,
		Policy:            o.policyKind(),
		SLO:               o.slo,
		Drift:             o.driftSpec(),
		Target:            o.target,
		ThreadsPerServer:  simThreads,
		ContextsPerServer: simContexts,
		Alloc:             o.alloc,
	}
	if o.isolLevels != nil {
		cfg.Isol = &cluster.IsolSimParams{Levels: o.isolLevels}
	}
	if len(o.mix) == 0 {
		pt, err := o.predTable("", maxInst, o.parallelism)
		if err != nil {
			return cluster.SimConfig{}, err
		}
		cfg.Table = pt
		return cfg, nil
	}
	// Heterogeneous fleet: each generation interferes on its own seeded
	// degradation surface (same application populations, same table
	// shape), with the server geometry of its isa configuration. The
	// shared table depth fits the tightest generation's idle contexts —
	// roomier generations simply never fill their last contexts from the
	// table's point of view.
	depth := maxInst
	for _, g := range o.mix {
		if idle := g.contexts - g.threads; idle < depth {
			depth = idle
		}
	}
	for _, g := range o.mix {
		pt, err := o.predTable(g.name, depth, o.parallelism)
		if err != nil {
			return cluster.SimConfig{}, err
		}
		cfg.MachineGens = append(cfg.MachineGens, cluster.MachineGenSpec{
			Name: g.name, Count: g.count,
			Threads: g.threads, Contexts: g.contexts,
			Table: pt,
		})
	}
	return cfg, nil
}

// predTable builds one generation's prediction surface through the full
// serving seam: analytic surrogate curves as the first tier, the seeded
// measured table as the fallback. An empty gen name is the homogeneous
// world.
func (o *simOptions) predTable(gen string, maxInst, parallelism int) (*cluster.PredTable, error) {
	set, tbl, err := cluster.SyntheticGenWorld(gen, simLats, simBatches, maxInst, o.seed)
	if gen == "" {
		set, tbl, err = cluster.SyntheticWorld(simLats, simBatches, maxInst, o.seed)
	}
	if err != nil {
		return nil, err
	}
	pred := cluster.NewTieredPredictor(
		&cluster.SurrogatePredictor{Set: set, Capacity: maxInst},
		&cluster.TablePredictor{Table: tbl},
	)
	return cluster.BuildPredTable(context.Background(), tbl, nil, cluster.QoSAvg, pred, parallelism)
}

// driftSpec lifts the -drift-* flags into the simulator's injected shift
// of the measured surface; nil (no -drift-factor) keeps the world
// stationary.
func (o *simOptions) driftSpec() *cluster.DriftSpec {
	if o.driftFactor == 0 {
		return nil
	}
	return &cluster.DriftSpec{At: o.driftAt, Factor: o.driftFactor}
}
