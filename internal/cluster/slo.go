package cluster

import (
	"fmt"
	"math"

	"repro/internal/qosd"
	"repro/internal/queueing"
)

// This file wires qosd's predictive SLO admission gate (DESIGN.md §13)
// into the discrete-event simulator as PolicySLO: instead of a QoS-floor
// best-fit, placements are admitted against per-class tail-latency
// budgets using the error-bound-inflated Eq. 6 estimate — exactly the
// check POST /v1/admit runs, evaluated once per (lat, batch, n) cell so
// the event loop stays pure array lookups.

// SLOSimClass maps one latency application population onto an SLO class:
// the qosd budget/percentile pair plus the service's M/M/1 rates, which
// the serving daemon receives per-request but the simulator must fix up
// front.
type SLOSimClass struct {
	Name       string  `json:"name"`
	Budget     float64 `json:"budget"` // seconds
	Percentile float64 `json:"percentile"`
	// Mu and Lambda are the class's solo per-thread service and arrival
	// rates (requests/second).
	Mu     float64 `json:"mu"`
	Lambda float64 `json:"lambda"`
}

// SLOSimParams parameterises SLO-gated simulation. Latency app i is
// assigned Classes[i % len(Classes)], so the canonical three-class set
// spreads round-robin over any population size.
type SLOSimParams struct {
	Classes []SLOSimClass `json:"classes"`
	// Headroom shrinks every budget to Budget·(1−Headroom) for admission
	// (violation accounting uses the full budget).
	Headroom float64 `json:"headroom"`
	// ScaleUpThreshold / ScaleDownThreshold parameterise the Summary's
	// saturation signal; zero picks qosd's defaults.
	ScaleUpThreshold   float64 `json:"scale_up_threshold,omitempty"`
	ScaleDownThreshold float64 `json:"scale_down_threshold,omitempty"`
}

func (p *SLOSimParams) withDefaults() *SLOSimParams {
	if p == nil {
		return nil
	}
	q := *p
	if q.ScaleUpThreshold == 0 {
		q.ScaleUpThreshold = qosd.DefaultScaleUpThreshold
	}
	if q.ScaleDownThreshold == 0 {
		q.ScaleDownThreshold = qosd.DefaultScaleDownThreshold
	}
	return &q
}

// Validate rejects parameter sets the gate cannot evaluate.
func (p *SLOSimParams) Validate() error {
	if p == nil {
		return fmt.Errorf("cluster: SLO policy needs SLO parameters")
	}
	if len(p.Classes) == 0 {
		return fmt.Errorf("cluster: SLO parameters need at least one class")
	}
	seen := make(map[string]bool, len(p.Classes))
	for _, cl := range p.Classes {
		if cl.Name == "" {
			return fmt.Errorf("cluster: SLO class with empty name")
		}
		if seen[cl.Name] {
			return fmt.Errorf("cluster: duplicate SLO class %q", cl.Name)
		}
		seen[cl.Name] = true
		if !(cl.Budget > 0) || math.IsInf(cl.Budget, 0) {
			return fmt.Errorf("cluster: SLO class %q budget %g must be positive and finite", cl.Name, cl.Budget)
		}
		if cl.Percentile <= 0 || cl.Percentile >= 1 {
			return fmt.Errorf("cluster: SLO class %q percentile %g outside (0,1)", cl.Name, cl.Percentile)
		}
		if cl.Mu <= 0 || cl.Lambda <= 0 {
			return fmt.Errorf("cluster: SLO class %q queue rates must be positive (mu=%g, lambda=%g)",
				cl.Name, cl.Mu, cl.Lambda)
		}
	}
	if p.Headroom < 0 || p.Headroom >= 1 || math.IsNaN(p.Headroom) {
		return fmt.Errorf("cluster: SLO headroom %g outside [0,1)", p.Headroom)
	}
	up, down := p.ScaleUpThreshold, p.ScaleDownThreshold
	if up == 0 {
		up = qosd.DefaultScaleUpThreshold
	}
	if down == 0 {
		down = qosd.DefaultScaleDownThreshold
	}
	if up <= down {
		return fmt.Errorf("cluster: scale-up threshold %g must exceed scale-down threshold %g", up, down)
	}
	return nil
}

// classFor returns the class assigned to latency application index lat.
func (p *SLOSimParams) classFor(lat int) SLOSimClass {
	return p.Classes[lat%len(p.Classes)]
}

// sloGate is the precomputed per-cell admission surface: for every
// (lat, batch, n) cell of the PredTable, whether the inflated predicted
// tail fits the effective budget, the admission slack used for best-fit
// scoring, and whether the *measured* degradation actually violates the
// class budget (the violation the Summary counts, for every policy run
// under SLO parameters — so greedy-vs-SLO comparisons count violations
// identically).
type sloGate struct {
	admit   []bool
	slack   []float64 // effectiveBudget − predictedTail; valid where admit
	violate []bool
}

// buildSLOGate evaluates the admission check once per cell.
func buildSLOGate(t *PredTable, p *SLOSimParams) (*sloGate, error) {
	if !t.HasDegradations() {
		return nil, fmt.Errorf("cluster: prediction table has no degradation surface (rebuild it with this version's BuildPredTable)")
	}
	cells := len(t.PredDeg)
	g := &sloGate{
		admit:   make([]bool, cells),
		slack:   make([]float64, cells),
		violate: make([]bool, cells),
	}
	for l := 0; l < len(t.LatencyApps); l++ {
		cl := p.classFor(l)
		class := qosd.SLOClass{Name: cl.Name, Budget: cl.Budget, Percentile: cl.Percentile}
		for b := 0; b < len(t.BatchApps); b++ {
			for n := 1; n <= t.MaxInstances; n++ {
				i := t.Cell(l, b, n)
				dec := qosd.EvaluateAdmission(t.PredDeg[i], t.PredBound[i], cl.Mu, cl.Lambda, class, p.Headroom)
				g.admit[i] = dec.Admitted
				g.slack[i] = dec.EffectiveBudget - dec.Tail
				// Violations are measured against the full budget at the
				// true degradation, with no bound inflation and no
				// headroom: did the co-location actually blow the SLO?
				actualTail := queueing.DegradedPercentile(cl.Percentile, cl.Mu, cl.Lambda, t.ActualDeg[i])
				g.violate[i] = !(actualTail <= cl.Budget)
			}
		}
	}
	return g, nil
}
