package cluster

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/xrand"
)

// The static Study replays the paper's scale-out experiment: a fixed batch
// assignment per server. DynamicStudy extends it to the operational
// setting Section III-D describes — batch jobs *arrive at the cluster
// scheduler over time*, are (quickly) profiled, placed by predicted
// interference, run for a while and depart — so admission decisions
// interleave with churn and servers fill and drain continuously.

// DynamicStudy is a discrete-event cluster simulation driven by the same
// degradation Table as the static study.
type DynamicStudy struct {
	Table *Study
	// ArrivalRate is the batch-job arrival rate (jobs per time unit) and
	// MeanDuration the mean exponential job duration.
	ArrivalRate  float64
	MeanDuration float64
	// Horizon is the simulated time span.
	Horizon float64
	Seed    uint64
}

// DynamicResult summarises a dynamic run.
type DynamicResult struct {
	Policy PolicyKind
	Target float64

	// Arrived/Placed/Rejected count batch jobs; rejected jobs found no
	// server whose QoS would survive them.
	Arrived  int
	Placed   int
	Rejected int

	// MeanUtilization is the time-weighted mean context utilisation;
	// PeakUtilization the maximum instantaneous one.
	MeanUtilization float64
	PeakUtilization float64

	// ViolationFrac is the fraction of placements whose server exceeded
	// its QoS budget at any point while the job ran (measured with actual
	// degradations).
	ViolationFrac float64
}

// dynEvent is a batch-job departure on the simulation heap.
type dynEvent struct {
	at     float64
	server int
}

type dynHeap []dynEvent

func (h dynHeap) Len() int           { return len(h) }
func (h dynHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h dynHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *dynHeap) Push(x any)        { *h = append(*h, x.(dynEvent)) }
func (h *dynHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *dynHeap) peek() dynEvent    { return (*h)[0] }
func (h *dynHeap) empty() bool       { return len(*h) == 0 }
func (h *dynHeap) pushE(e dynEvent)  { heap.Push(h, e) }
func (h *dynHeap) popE() dynEvent    { return heap.Pop(h).(dynEvent) }

// dynServer is a server's live co-location state. For simplicity each
// server hosts at most one batch application *kind* at a time (instances
// of the same kind stack, as in the static study's table).
type dynServer struct {
	lat   string
	batch string
	n     int
}

// Run executes the dynamic study under one policy and QoS target
// (average-performance QoS; the tail variant follows by supplying
// services, as in the static study).
func (d *DynamicStudy) Run(policy PolicyKind, target float64) (DynamicResult, error) {
	s := d.Table
	if s == nil {
		return DynamicResult{}, fmt.Errorf("cluster: dynamic study needs a table study")
	}
	if err := s.validate(); err != nil {
		return DynamicResult{}, err
	}
	if d.ArrivalRate <= 0 || d.MeanDuration <= 0 || d.Horizon <= 0 {
		return DynamicResult{}, fmt.Errorf("cluster: dynamic study rates must be positive")
	}
	rng := xrand.New(d.Seed ^ 0xD1CE)
	var servers []dynServer
	for _, lat := range s.Table.LatencyApps {
		for i := 0; i < s.ServersPerApp; i++ {
			servers = append(servers, dynServer{lat: lat})
		}
	}

	res := DynamicResult{Policy: policy, Target: target}
	var events dynHeap
	heap.Init(&events)

	// Utilisation accounting: integrate busy contexts over time.
	busyBase := float64(s.ThreadsPerServer * len(servers))
	totalCtx := float64(s.ContextsPerServer * len(servers))
	instances := 0
	lastT := 0.0
	utilInt := 0.0

	account := func(now float64) {
		utilInt += (busyBase + float64(instances)) / totalCtx * (now - lastT)
		u := (busyBase + float64(instances)) / totalCtx
		if u > res.PeakUtilization {
			res.PeakUtilization = u
		}
		lastT = now
	}

	// admissible returns the QoS (avg-performance) on server sv with one
	// more instance of batch b, under predicted or actual degradations.
	headroom := func(sv *dynServer, b string, useActual bool) (float64, error) {
		if sv.batch != "" && sv.batch != b {
			return -1, nil // occupied by a different batch kind
		}
		n := sv.n + 1
		if n > s.Table.MaxInstances {
			return -1, nil
		}
		e, err := s.Table.Get(sv.lat, b, n)
		if err != nil {
			return -1, err
		}
		deg := e.Predicted
		if useActual {
			deg = e.Actual
		}
		q := 1 - deg
		if q < target {
			return -1, nil
		}
		return q - target, nil
	}

	next := rng.Exp(d.ArrivalRate)
	for next < d.Horizon || !events.empty() {
		// Process departures before the next arrival.
		if !events.empty() && (events.peek().at <= next || next >= d.Horizon) {
			e := events.popE()
			account(e.at)
			sv := &servers[e.server]
			sv.n--
			instances--
			if sv.n == 0 {
				sv.batch = ""
			}
			continue
		}
		if next >= d.Horizon {
			break
		}
		// Arrival.
		account(next)
		res.Arrived++
		b := s.Table.BatchApps[rng.Intn(len(s.Table.BatchApps))]

		chosen := -1
		switch policy {
		case PolicySMiTe, PolicyOracle:
			// Best-fit: the admissible server with the least spare QoS
			// headroom packs jobs tightly while respecting the target.
			bestHead := 2.0
			for i := range servers {
				h, err := headroom(&servers[i], b, policy == PolicyOracle)
				if err != nil {
					return DynamicResult{}, err
				}
				if h >= 0 && h < bestHead {
					bestHead = h
					chosen = i
				}
			}
		case PolicyRandom:
			// Interference-oblivious: any server with a free context and a
			// compatible (or absent) batch kind.
			start := rng.Intn(len(servers))
			for k := 0; k < len(servers); k++ {
				i := (start + k) % len(servers)
				sv := &servers[i]
				if (sv.batch == "" || sv.batch == b) && sv.n < s.Table.MaxInstances {
					chosen = i
					break
				}
			}
		default:
			return DynamicResult{}, fmt.Errorf("cluster: unknown policy %d", policy)
		}

		if chosen < 0 {
			res.Rejected++
		} else {
			sv := &servers[chosen]
			sv.batch = b
			sv.n++
			instances++
			res.Placed++
			// QoS check with the actual degradation at the new occupancy.
			e, err := s.Table.Get(sv.lat, b, sv.n)
			if err != nil {
				return DynamicResult{}, err
			}
			if 1-e.Actual < target {
				res.ViolationFrac++ // numerator; normalised below
			}
			events.pushE(dynEvent{at: next + rng.Exp(1/d.MeanDuration), server: chosen})
		}
		next += rng.Exp(d.ArrivalRate)
	}
	account(lastT) // close the integral at the final event time
	if lastT > 0 {
		res.MeanUtilization = utilInt / lastT
	}
	if res.Placed > 0 {
		res.ViolationFrac /= float64(res.Placed)
	}
	return res, nil
}

// SortableBatch returns the study's batch apps sorted (test helper).
func (d *DynamicStudy) SortableBatch() []string {
	out := append([]string(nil), d.Table.Table.BatchApps...)
	sort.Strings(out)
	return out
}
