//go:build race

package main

// raceEnabled scales the full-size simulation tests down under the race
// detector, whose several-fold slowdown would otherwise dominate the race
// job.
const raceEnabled = true
