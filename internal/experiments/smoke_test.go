package experiments

import (
	"testing"

	"repro/internal/cluster"
)

// TestExperimentsSmoke runs every figure driver at TestScale and validates
// shape-level properties against the paper.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers in short mode")
	}
	l := NewLab(TestScale())

	t1 := l.Table1()
	if len(t1.Machines) != 2 {
		t.Fatalf("Table1: want 2 machines, got %d", len(t1.Machines))
	}
	t.Log(t1.String())

	fig6, err := l.Fig6Summary()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(fig6.String())

	fig7, err := l.Fig7Correlation()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(fig7.String())
	if fig7.FracBelow80 < 0.4 {
		t.Errorf("Fig7: only %.2f of dimension pairs decorrelated below 0.8; paper reports 97.96%%", fig7.FracBelow80)
	}

	fig10, err := l.Fig10SpecSMT()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(fig10.String())
	if fig10.SmiteEval.MeanAbsError >= fig10.PMUEval.MeanAbsError {
		t.Errorf("Fig10: SMiTe (%.3f) should beat PMU (%.3f)", fig10.SmiteEval.MeanAbsError, fig10.PMUEval.MeanAbsError)
	}

	fig12, err := l.Fig12CloudSuite()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(fig12.String())

	fig13, err := l.Fig13TailLatency()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(fig13.String())

	fig14, err := l.Fig14And15AvgQoS()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(fig14.String())
	g95 := fig14.Cells[0.95][cluster.PolicySMiTe].UtilizationGain
	g85 := fig14.Cells[0.85][cluster.PolicySMiTe].UtilizationGain
	if g85 < g95 {
		t.Errorf("Fig14: utilization gain should grow as QoS loosens (95%%: %.3f, 85%%: %.3f)", g95, g85)
	}

	fig18, err := l.Fig18TCO()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(fig18.String())
}

// TestExperimentsSmoke2 covers the drivers not exercised by the first
// smoke test (all-pairs port utilisation, Ruler validation, CMP
// prediction).
func TestExperimentsSmoke2(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers in short mode")
	}
	l := NewLab(TestScale())

	ports, err := l.Fig3And5PortUtilization()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(ports.String())
	if ports.Pairs == 0 {
		t.Fatal("no pairs")
	}
	// Paper: the store port is heavily underutilised vs the load ports.
	if ports.Median(4) > ports.Median(2) {
		t.Errorf("store port median %.3f above load port median %.3f", ports.Median(4), ports.Median(2))
	}

	fig9, err := l.Fig9RulerValidation()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(fig9.String())
	for _, fu := range fig9.FU {
		if fu.TargetUtil < 0.9999 {
			t.Errorf("%s target-port utilisation %.5f < 99.99%%", fu.Name, fu.TargetUtil)
		}
		if fu.Leakage > 0.001 {
			t.Errorf("%s leaked %.4f onto non-target ports", fu.Name, fu.Leakage)
		}
		if fu.MemAccesses != 0 {
			t.Errorf("%s touched memory %d times", fu.Name, fu.MemAccesses)
		}
	}
	for _, lc := range fig9.Linearity {
		// At TestScale windows the noise floor rivals the per-step signal;
		// the full-scale run (EXPERIMENTS.md) validates the strong
		// correlations. Here we require the relation not be inverted.
		if lc.MeanR < 0 {
			t.Errorf("%v intensity-degradation relation inverted: r=%.2f", lc.Dim, lc.MeanR)
		}
	}

	fig11, err := l.Fig11SpecCMP()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(fig11.String())
	if fig11.SmiteEval.MeanAbsError >= fig11.PMUEval.MeanAbsError*1.2+0.02 {
		t.Errorf("Fig11: SMiTe (%.3f) should not lose badly to PMU (%.3f) even at reduced scale", fig11.SmiteEval.MeanAbsError, fig11.PMUEval.MeanAbsError)
	}
}

// TestModelAblation verifies the ablation driver and the multidimensional
// claim: the 7-dimension SMiTe model must beat the single-metric
// Bubble-Up-style baseline on SMT co-locations.
func TestModelAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in short mode")
	}
	l := NewLab(TestScale())
	r, err := l.ModelAblation()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(r.String())
	byName := make(map[string]AblationRow)
	for _, row := range r.Rows {
		byName[row.Model] = row
	}
	smite := byName["SMiTe (Eq.3, NNLS)"]
	bubble := byName["Bubble-Up-style (1 dim)"]
	if smite.Model == "" || bubble.Model == "" {
		t.Fatal("ablation rows missing")
	}
	if smite.TestErr >= bubble.TestErr {
		t.Errorf("multidimensional SMiTe (%.3f) should beat the single-metric model (%.3f) on SMT", smite.TestErr, bubble.TestErr)
	}
}

// TestCrossMachine exercises the coefficient-transfer study.
func TestCrossMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-machine study in short mode")
	}
	l := NewLab(TestScale())
	r, err := l.CrossMachine()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(r.String())
	if r.NativeErr <= 0 || r.TransferErr <= 0 || r.RetrainedErr <= 0 {
		t.Errorf("degenerate errors: %+v", r)
	}
	// Transfer should not be catastrophically worse than retraining.
	if r.TransferErr > r.RetrainedErr*3+0.05 {
		t.Errorf("coefficient transfer collapsed: %.3f vs retrained %.3f", r.TransferErr, r.RetrainedErr)
	}
}
