package smite

import (
	"io"

	"repro/internal/profile"
	"repro/internal/sim/engine"
	"repro/internal/sim/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Uop is one recorded micro-op (see the trace helpers below).
type Uop = isa.Uop

// CaptureTrace records n micro-ops of an application's dynamic stream.
// Traces are portable: write them with WriteTrace, replay them on any
// machine with TraceJob.
func CaptureTrace(spec *Spec, n int, seed uint64) []Uop {
	return trace.Capture(workload.NewGen(spec, seed), n)
}

// WriteTrace encodes a trace in the compact binary format.
func WriteTrace(w io.Writer, uops []Uop) error {
	tw, err := trace.NewWriter(w)
	if err != nil {
		return err
	}
	for i := range uops {
		if err := tw.Write(&uops[i]); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// ReadTrace decodes a trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]Uop, error) { return trace.ReadAll(r) }

// TraceJob wraps a captured trace as a characterizable job: the trace is
// replayed in a loop on each of the job's instances. footprintBytes
// optionally declares resident regions for cache prewarm (pass the
// original workload's working-set sizes). Note that all instances replay
// the same trace in lockstep (they live in disjoint address spaces, so
// they contend without sharing); capture one trace per thread for
// decorrelated instances.
func TraceJob(name string, uops []Uop, instances int, footprintBytes ...uint64) profile.Job {
	return profile.StreamJob(name, instances, func(int, uint64) engine.Stream {
		s := trace.NewStream(uops, true)
		s.DeclareFootprint(footprintBytes...)
		return s
	})
}

// CharacterizeJob characterizes an arbitrary job (for example a TraceJob)
// exactly like a stock workload.
func (s *System) CharacterizeJob(job profile.Job, placement Placement) (Characterization, error) {
	return s.prof.CharacterizeJob(job, placement)
}
