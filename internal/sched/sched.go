// Package sched is the deterministic parallel scheduler underneath the
// v2 characterization API: it fans independent simulation cells — one
// (application, Ruler) co-location, one pair measurement — out across a
// bounded worker pool while guaranteeing that results are bit-identical
// to a sequential run.
//
// Determinism comes from two rules:
//
//   - Workers communicate only through index-addressed slots. A task may
//     write out[i] and nothing else, so completion order cannot influence
//     the reduction; internal/simtest pins this with a metamorphic law
//     (result independence from Parallelism).
//   - Error selection is by index, not by time: when several tasks fail,
//     Map reports the lowest-index error, exactly what a sequential loop
//     breaking at the first failure would surface.
//
// Cancellation is cooperative at two granularities: Map stops dispatching
// new tasks once ctx is done, and tasks receive ctx so long-running
// simulation (engine.RunContext) can abort mid-window instead of burning
// the worker budget.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs/trace"
)

// Workers resolves a parallelism setting: values above zero are taken as
// is, anything else means one worker per available CPU (GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(ctx, i) for every i in [0, n) on at most workers goroutines
// (Workers-resolved, clamped to n) and returns after all started tasks
// finish. Tasks must confine their writes to index-addressed slots of
// caller-owned storage; under that contract the result of Map is
// identical for every workers value, including 1.
//
// Error semantics are deterministic: if any task returned an error, Map
// returns the one with the lowest index — regardless of which failure
// happened first in wall-clock time. Once ctx is cancelled no new tasks
// start; if cancellation caused tasks to be skipped and no task error
// outranks it, Map returns ctx.Err(). A fully-completed run returns nil
// even if ctx was cancelled after the last dispatch.
func Map(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	// With a tracer on ctx, every task gets a span and each pool worker
	// its own track, so the dispatch renders as parallel rows in the
	// Chrome trace view. traced is checked once here: when false (the
	// common case) the task closures below add zero work.
	traced := trace.FromContext(ctx) != nil
	runTask := func(ctx context.Context, i int) error {
		if !traced {
			return fn(ctx, i)
		}
		tctx, span := trace.Start(ctx, "sched.task", trace.Int("task", i))
		err := fn(tctx, i)
		if err != nil {
			span.SetAttr(trace.String("error", err.Error()))
		}
		span.End()
		return err
	}
	if workers == 1 {
		// Sequential fast path: no goroutines, first error wins naturally.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runTask(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var skipped atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		wctx := ctx
		if traced {
			wctx = trace.WithTrack(ctx, fmt.Sprintf("sched.worker-%02d", w))
		}
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				if wctx.Err() != nil {
					skipped.Store(true)
					return
				}
				errs[i] = runTask(wctx, i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if skipped.Load() {
		return ctx.Err()
	}
	return nil
}
