// Package mem models the chip's memory controller as a bandwidth-limited
// FIFO service point.
//
// Every L3 miss is serialised at one request per ServiceInterval cycles
// chip-wide on top of a fixed base latency, so memory-bandwidth contention
// — the uncore dimension prior CMP work (Bubble-Up) models — emerges as
// queueing delay when co-located workloads stream together.
package mem

// Controller serialises memory requests. It is not safe for concurrent use.
type Controller struct {
	baseLatency     uint64
	serviceInterval uint64

	nextFree uint64

	requests   uint64
	queuedFor  uint64 // cumulative cycles spent waiting behind other requests
	maxBacklog uint64
}

// New builds a controller with the given DRAM base latency and the
// bandwidth-defining service interval (cycles between request grants).
func New(baseLatency, serviceInterval uint64) *Controller {
	if serviceInterval == 0 {
		panic("mem: service interval must be positive")
	}
	return &Controller{baseLatency: baseLatency, serviceInterval: serviceInterval}
}

// Request admits a memory request at cycle now and returns the cycle at
// which the data is available.
func (m *Controller) Request(now uint64) (completeAt uint64) {
	start := now
	if m.nextFree > start {
		start = m.nextFree
	}
	m.nextFree = start + m.serviceInterval
	wait := start - now
	m.requests++
	m.queuedFor += wait
	if wait > m.maxBacklog {
		m.maxBacklog = wait
	}
	return start + m.baseLatency
}

// Backlog returns how many cycles of already-granted service extend beyond
// cycle now — the queueing delay the next request admitted at now would
// see. Zero means the controller is idle. Read-only; the timeline sampler
// uses it as the DRAM queue-occupancy signal.
func (m *Controller) Backlog(now uint64) uint64 {
	if m.nextFree > now {
		return m.nextFree - now
	}
	return 0
}

// Stats returns the request count, the average queueing delay in cycles and
// the maximum backlog observed.
func (m *Controller) Stats() (requests uint64, avgQueue float64, maxBacklog uint64) {
	avg := 0.0
	if m.requests > 0 {
		avg = float64(m.queuedFor) / float64(m.requests)
	}
	return m.requests, avg, m.maxBacklog
}

// ResetStats zeroes the counters without releasing the current backlog.
func (m *Controller) ResetStats() {
	m.requests, m.queuedFor, m.maxBacklog = 0, 0, 0
}

// Reset restores the controller to its post-New state: backlog released and
// statistics zeroed.
func (m *Controller) Reset() {
	m.nextFree = 0
	m.ResetStats()
}

// Throttle is a per-context token-bucket shaper on the DRAM request
// stream — the MBA-style memory-bandwidth enforcement knob. It implements
// the generic cell rate algorithm: a context may burst up to its token
// capacity back to back and thereafter sustains one request per interval
// cycles; requests beyond the budget are delayed, never dropped, so the
// delay surfaces as extra memory latency for the throttled context alone.
// The zero Throttle admits everything immediately.
type Throttle struct {
	interval uint64 // cycles per token; 0 = unthrottled
	slack    uint64 // (tokens-1)*interval: the burst allowance
	tat      uint64 // theoretical arrival time of the next conforming request
	delayed  uint64 // cumulative cycles of throttle-imposed delay
}

// NewThrottle builds a shaper admitting bursts of up to tokens requests
// and a sustained rate of one request per refillCycles cycles. tokens and
// refillCycles must both be positive (validated by isol.Policy.Validate);
// a zero Throttle means no throttling.
func NewThrottle(tokens, refillCycles uint64) Throttle {
	return Throttle{interval: refillCycles, slack: (tokens - 1) * refillCycles}
}

// Enabled reports whether the shaper throttles at all.
func (t *Throttle) Enabled() bool { return t.interval != 0 }

// Admit returns the earliest cycle ≥ now at which the request conforms to
// the budget, consuming one token.
func (t *Throttle) Admit(now uint64) uint64 {
	if t.interval == 0 {
		return now
	}
	at := now
	if t.tat > t.slack && t.tat-t.slack > now {
		at = t.tat - t.slack
	}
	if at > t.tat {
		t.tat = at + t.interval
	} else {
		t.tat += t.interval
	}
	t.delayed += at - now
	return at
}

// Delayed returns the cumulative cycles requests have been held back.
func (t *Throttle) Delayed() uint64 { return t.delayed }

// Reset refills the bucket and zeroes the delay statistic.
func (t *Throttle) Reset() { t.tat, t.delayed = 0, 0 }
