// Command clustersim runs the warehouse-scale scale-out study standalone:
// it builds the CloudSuite co-location degradation table on the simulated
// Sandy Bridge-EN fleet, then schedules batch work onto the latency
// servers' idle SMT contexts under the SMiTe, Oracle and Random policies
// and reports utilisation gains, QoS violations and the TCO impact.
//
// Usage:
//
//	clustersim [-scale full|test] [-qos avg|tail] [-targets 0.95,0.90,0.85] [-servers 1000]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/tco"
)

func main() {
	scaleFlag := flag.String("scale", "test", "experiment scale: full or test")
	qosFlag := flag.String("qos", "avg", "QoS definition: avg (average performance) or tail (90th-percentile latency)")
	targetsFlag := flag.String("targets", "0.95,0.90,0.85", "comma-separated QoS targets to detail (subset of 0.95,0.90,0.85)")
	serversFlag := flag.Int("servers", 0, "servers per latency application (0 = scale default)")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "full":
		scale = experiments.FullScale()
	case "test":
		scale = experiments.TestScale()
	default:
		fmt.Fprintf(os.Stderr, "clustersim: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}
	if *serversFlag > 0 {
		scale.ServersPerApp = *serversFlag
	}

	var targets []float64
	for _, t := range strings.Split(*targetsFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
		if err != nil || v <= 0 || v > 1 {
			fmt.Fprintf(os.Stderr, "clustersim: bad target %q\n", t)
			os.Exit(2)
		}
		targets = append(targets, v)
	}

	lab := experiments.NewLab(scale)
	fmt.Println("building the co-location degradation table (this measures every latency×batch×instances cell)...")
	var res experiments.ScaleOutResult
	var err error
	switch *qosFlag {
	case "avg":
		res, err = lab.Fig14And15AvgQoS()
	case "tail":
		res, err = lab.Fig16And17TailQoS()
	default:
		fmt.Fprintf(os.Stderr, "clustersim: unknown qos %q\n", *qosFlag)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "clustersim: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(res.String())

	// Per-target policy detail.
	for _, target := range res.Targets {
		if !contains(targets, target) {
			continue
		}
		fmt.Printf("target %.0f%%:\n", target*100)
		for _, pol := range []cluster.PolicyKind{cluster.PolicySMiTe, cluster.PolicyOracle, cluster.PolicyRandom} {
			r := res.Cells[target][pol]
			fmt.Printf("  %-7s util %.1f%% -> %.1f%% (gain %.2f%%), mean instances %.2f, violations %.2f%% of co-located (worst %.2f%%)\n",
				pol, r.BaselineUtilization*100, r.Utilization*100, r.UtilizationGain*100,
				r.MeanInstances, r.ViolationFrac*100, r.ViolationMax*100)
		}
	}

	params := tco.Google2014()
	fmt.Printf("\nTCO model: $%.0f/server, %.0fW at PUE %.2f, $%.2f/kWh, %g-year horizon => $%.0f/server/year\n",
		params.ServerCapex, params.ServerPowerWatts, params.PUE, params.ElectricityPerKWh,
		params.HorizonYears, params.PerServerPerYear())
}

func contains(xs []float64, v float64) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
