package smite

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
)

// New with functional options must configure the profiler exactly like the
// deprecated constructors plus manual field writes did.
func TestNewFunctionalOptions(t *testing.T) {
	var mu sync.Mutex
	fired := 0
	sys, err := New(IvyBridge.Config(),
		WithOptions(FastOptions()),
		WithCheck(2048),
		WithParallelism(3),
		WithProgress(func(done, total int) { mu.Lock(); fired++; mu.Unlock() }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Machine().Cores != IvyBridge.Config().Cores {
		t.Fatalf("machine config not applied")
	}
	spec, err := WorkloadByName("444.namd")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CharacterizeAll([]*Spec{spec}, SMT); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if fired == 0 {
		t.Fatal("WithProgress callback never fired during CharacterizeAll")
	}
}

// WithOptions replaces the base wholesale, so option order matters: a
// targeted option before WithOptions is overwritten.
func TestWithOptionsOrder(t *testing.T) {
	sys, err := New(IvyBridge.Config(), WithParallelism(7), WithOptions(FastOptions()))
	if err != nil {
		t.Fatal(err)
	}
	_ = sys // construction succeeding is the point; Parallelism is internal
}

// A stock Machine and its expanded Config build identical systems
// through New — the equivalence the removed NewSystem/NewSystemConfig
// shims used to paper over (MIGRATION.md).
func TestNewMachineConfigEquivalence(t *testing.T) {
	a, err := New(IvyBridge.Config(), WithOptions(FastOptions()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(IvyBridge.Config(), WithOptions(FastOptions()))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := WorkloadByName("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	ia, err := a.SoloIPC(spec)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := b.SoloIPC(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ia != ib {
		t.Fatalf("identical constructions disagree on solo IPC: %v %v", ia, ib)
	}
}

// An invalid configuration is rejected by New.
func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := IvyBridge.Config()
	cfg.Cores = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted a zero-core machine")
	}
}

// Parallel CharacterizeAll must be bit-identical to sequential through the
// public API (the tentpole acceptance criterion).
func TestSystemCharacterizeAllParallelismInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization in short mode")
	}
	var specs []*Spec
	for _, n := range []string{"444.namd", "429.mcf"} {
		s, err := WorkloadByName(n)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}
	var baseline []Characterization
	for _, workers := range []int{1, 8} {
		sys, err := New(IvyBridge.Config(), WithOptions(FastOptions()), WithParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		got, err := sys.CharacterizeAll(specs, SMT)
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = got
		} else if !reflect.DeepEqual(baseline, got) {
			t.Fatalf("Parallelism=%d changed CharacterizeAll results", workers)
		}
	}
}

// Context cancellation propagates through the public API.
func TestSystemContextCancellation(t *testing.T) {
	sys, err := New(IvyBridge.Config(), WithOptions(FastOptions()))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := WorkloadByName("470.lbm")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.CharacterizeContext(ctx, spec, SMT); !errors.Is(err, context.Canceled) {
		t.Fatalf("CharacterizeContext: got %v, want context.Canceled", err)
	}
	if _, err := sys.SoloIPCContext(ctx, spec); !errors.Is(err, context.Canceled) {
		t.Fatalf("SoloIPCContext: got %v, want context.Canceled", err)
	}
	if _, _, err := sys.TrainFromSetsContext(ctx, []*Spec{spec}, SMT); !errors.Is(err, context.Canceled) {
		t.Fatalf("TrainFromSetsContext: got %v, want context.Canceled", err)
	}
}
